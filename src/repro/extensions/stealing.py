"""Intra-subproblem work stealing over shared-memory compact subproblems.

:class:`~repro.extensions.parallel.ParallelDCFastQC` shards *whole* DC
subproblems across a process pool, which serializes the run whenever one
subproblem dominates — the common case on skewed degree distributions, where
the hub vertex's 2-hop ball holds most of the work.  This module parallelises
*inside* a subproblem: the explicit work-stack driver
(:func:`repro.core.kernel.depth_first_enumerate`) exposes its pending subtrees,
so an idle worker can steal one from the **bottom** of a busy worker's stack
(the bottom-most entry roots the largest unexplored subtree — classic
work-first stealing order) and enumerate it independently.

Three properties keep stolen subtrees exact:

* **Masks are a complete snapshot.**  A pending ``(S, C, D)`` entry fully
  determines its subtree: the ledger kernel's degree arrays are pure functions
  of the masks and the graph, so the steal payload is just three ints —
  O(|S| + |C|) bits, not O(subgraph) — and the thief rebuilds identical
  ledgers with ``BranchState.from_branch``.
* **The maximality halo travels with the subproblem.**  Workers attach the
  :class:`~repro.core.dcfastqc.CompactSubproblem` (ball + one-hop halo
  adjacency) from a shared-memory segment, so a thief's maximality filtering
  decides exactly like the sequential driver's full-graph check, wherever the
  subtree runs.
* **Verdicts flow back.**  An ancestor's ``G[S]`` fallback emission depends on
  whether *any* descendant output a quasi-clique, so a donor parks the stolen
  subtree's parent frame (:class:`~repro.core.kernel.BranchFrame`) and the
  thief's exact driver verdict is routed back and contributed via
  :func:`~repro.core.kernel.contribute_steal_result` before the ancestor
  closes.  Candidate batches are therefore branch-for-branch identical to the
  sequential driver (each branch is expanded exactly once, somewhere).

The process topology is one coordinator (the parent) plus N workers sharing a
task queue.  Tasks are either subproblem roots (seeded by the coordinator) or
stolen subtrees (published by donors directly onto the task queue); every task
eventually produces exactly one ``done`` event, possibly long after the
worker's local stack drained, and the coordinator routes thief verdicts back
to donor inboxes.  Termination is announce/done accounting with out-of-order
tolerance (a thief's ``done`` may overtake the donor's ``steal`` announce).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from queue import Empty

from ..core.branch import Branch
from ..core.dcfastqc import CompactSubproblem
from ..core.fastqc import FastQC
from ..core.kernel import contribute_steal_result
from ..core.stats import SearchStatistics
from ..errors import ReproError
from ..resilience.faults import fault_point

#: Prefix of every shared-memory segment this module creates; the chaos tests
#: and CI assert nothing matching ``/dev/shm/<prefix>*`` survives a run.
SEGMENT_PREFIX = "repro-steal"

#: How many branch expansions a worker runs between scheduler polls (inbox
#: drain + hungry check).  Small enough to keep steal latency low, large
#: enough that the disabled-path cost is one counter decrement per branch.
DEFAULT_POLL_PERIOD = 64

#: After publishing a steal, a donor skips this many polls before offering
#: another subtree, so one hungry signal does not flood the queue.
_STEAL_COOLDOWN_POLLS = 4


class WorkerCrash(ReproError):
    """A branch-parallel worker died mid-run; the caller should fall back."""


# ----------------------------------------------------------------------
# Shared-memory codec: one segment per compact subproblem
# ----------------------------------------------------------------------
# Layout: header | ball adjacency rows | halo adjacency rows | labels pickle.
# All rows are ``row_bytes`` wide (masks over ball indices), so a worker can
# slice any row without parsing; labels are pickled once at the tail.
_MAGIC = b"RQS1"
_HEADER = struct.Struct("<4sIIIII")  # magic, ball, halo, row_bytes, root, labels_len


def encode_subproblem(subproblem: CompactSubproblem) -> bytes:
    """Serialise a compact subproblem into the shared-memory segment layout."""
    ball = len(subproblem.labels)
    halo = len(subproblem.halo_labels)
    row_bytes = max(1, (ball + 7) // 8)
    labels_blob = pickle.dumps(
        (subproblem.labels, subproblem.halo_labels),
        protocol=pickle.HIGHEST_PROTOCOL)
    size = _HEADER.size + row_bytes * (ball + halo) + len(labels_blob)
    buffer = bytearray(size)
    _HEADER.pack_into(buffer, 0, _MAGIC, ball, halo, row_bytes,
                      subproblem.root_local, len(labels_blob))
    offset = _HEADER.size
    for mask in subproblem.adjacency_masks:
        buffer[offset:offset + row_bytes] = mask.to_bytes(row_bytes, "little")
        offset += row_bytes
    for mask in subproblem.halo_adjacency:
        buffer[offset:offset + row_bytes] = mask.to_bytes(row_bytes, "little")
        offset += row_bytes
    buffer[offset:] = labels_blob
    return bytes(buffer)


def decode_subproblem(buffer: bytes) -> CompactSubproblem:
    """Inverse of :func:`encode_subproblem` (accepts any bytes-like view)."""
    magic, ball, halo, row_bytes, root_local, labels_len = _HEADER.unpack_from(
        buffer, 0)
    if magic != _MAGIC:
        raise ReproError("not a repro shared-memory subproblem segment")
    offset = _HEADER.size
    rows = []
    for _ in range(ball + halo):
        rows.append(int.from_bytes(buffer[offset:offset + row_bytes], "little"))
        offset += row_bytes
    labels, halo_labels = pickle.loads(
        bytes(buffer[offset:offset + labels_len]))
    return CompactSubproblem(
        root_local=root_local, labels=labels,
        adjacency_masks=tuple(rows[:ball]),
        halo_labels=halo_labels, halo_adjacency=tuple(rows[ball:]))


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it for auto-unlink.

    Only the coordinator owns segment lifetimes; a worker that also registered
    the name with its resource tracker would race the parent's unlink and spam
    "leaked shared_memory" warnings at exit.  Python 3.13 has ``track=False``
    for exactly this; older versions need the documented unregister dance.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: attach re-registers the name, but workers are forked
        # so they share the coordinator's tracker process, whose cache is a
        # set — the re-registration is idempotent and the coordinator's
        # eventual unlink removes the single entry.  Unregistering here would
        # strip the coordinator's own registration and make that unlink
        # traceback inside the tracker.
        return shared_memory.SharedMemory(name=name)


class SharedSubproblemStore:
    """Coordinator-side owner of the per-subproblem shared-memory segments.

    ``publish`` copies one encoded subproblem into a fresh segment and returns
    its name (the *token* shipped in task messages); ``close`` unlinks every
    segment — it runs in a ``finally`` so a crashed run leaves ``/dev/shm``
    clean.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._sequence = 0

    def publish(self, subproblem: CompactSubproblem) -> str:
        blob = encode_subproblem(subproblem)
        self._sequence += 1
        name = (f"{SEGMENT_PREFIX}-{os.getpid()}-{self._sequence}-"
                f"{os.urandom(3).hex()}")
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=len(blob))
        segment.buf[:len(blob)] = blob
        self._segments[segment.name] = segment
        return segment.name

    def close(self) -> None:
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


class SubproblemCache:
    """Worker-side attach-once cache: token -> decoded subproblem."""

    def __init__(self) -> None:
        self._attached: dict[str, tuple] = {}

    def get(self, token: str) -> CompactSubproblem:
        hit = self._attached.get(token)
        if hit is not None:
            return hit[1]
        segment = _attach_segment(token)
        subproblem = decode_subproblem(segment.buf)
        self._attached[token] = (segment, subproblem)
        return subproblem

    def close(self) -> None:
        for segment, _ in self._attached.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass
        self._attached.clear()


# ----------------------------------------------------------------------
# Scheduler: the object depth_first_enumerate calls back into
# ----------------------------------------------------------------------
class StealScheduler:
    """Bridges the enumeration driver and a steal-capable runtime.

    The driver calls :meth:`begin_task` once per task (handing over its
    ``steal`` closure, its ``close`` callable and the task's root frame) and
    :meth:`on_branch` once per expansion; every ``period`` expansions the
    runtime polls its inbox and decides whether to offer a subtree.  The
    runtime may be the real multiprocessing worker runtime or the inline
    single-process model used by the parity tests — the driver cannot tell.
    """

    def __init__(self, runtime, period: int = DEFAULT_POLL_PERIOD) -> None:
        self.runtime = runtime
        self.period = max(1, period)
        self._countdown = self.period
        self.steal = None
        self.close = None

    def begin_task(self, steal, close, root_frame) -> None:
        self.steal = steal
        self.close = close
        self.runtime.bind_root_frame(root_frame)

    def on_branch(self) -> None:
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.period
        self.runtime.poll(self)


@dataclass
class ForcedStealSchedule:
    """Deterministic steal forcing for tests: offer on every Nth poll.

    Replaces the hungry-worker signal so steal points are reproducible; the
    protocol must produce sequential-identical answers for *any* schedule, so
    the differential tests sweep ``every`` and ``offset`` over a seed grid.
    """

    every: int = 2
    offset: int = 0
    _polls: int = 0

    def __call__(self, runtime) -> bool:
        self._polls += 1
        return self._polls % self.every == self.offset % self.every


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _BranchWorkerConfig:
    """Per-run parameters shipped to every branch-parallel worker."""

    gamma: float
    theta: int
    branching: str
    kernel: str
    poll_period: int
    steal_schedule: object | None  # picklable callable(runtime) -> bool


class _WorkerRuntime:
    """Everything one branch-parallel worker process owns.

    One :class:`FastQC` engine per attached subproblem (reused across tasks of
    that subproblem, so per-worker ``_seen_masks`` dedup and statistics
    accumulate exactly like a pool worker's); one global emission buffer
    flushed with each ``done`` event; and a ``parked`` table mapping published
    steal ids to the frames awaiting the thief's verdict.
    """

    def __init__(self, worker_id: int, tasks, events, inbox, hungry,
                 config: _BranchWorkerConfig) -> None:
        self.worker_id = worker_id
        self.tasks = tasks
        self.events = events
        self.inbox = inbox
        self.hungry = hungry
        self.config = config
        self.cache = SubproblemCache()
        self.scheduler = StealScheduler(self, period=config.poll_period)
        self.engines: dict[str, FastQC] = {}
        self.emissions: list[frozenset] = []
        self.parked: dict[str, tuple] = {}
        self.active_task: tuple[str, str] | None = None  # (task_id, token)
        self.steal_sequence = 0
        self.cooldown = 0
        self.busy_seconds = 0.0
        self.idle_gaps_ms: list[int] = []
        self.steals_published = 0

    # -- engine/task plumbing ------------------------------------------
    def engine_for(self, token: str) -> FastQC:
        engine = self.engines.get(token)
        if engine is None:
            subproblem = self.cache.get(token)
            graph = subproblem.build_graph()
            maximality = (subproblem.build_maximality_graph()
                          if subproblem.halo_labels else graph)
            engine = FastQC(graph, self.config.gamma, self.config.theta,
                            branching=self.config.branching,
                            kernel=self.config.kernel,
                            maximality_graph=maximality,
                            on_output=self.emissions.append)
            self.engines[token] = engine
        return engine

    def bind_root_frame(self, root_frame) -> None:
        task_id, _token = self.active_task
        origin = self._origin_of(task_id)

        def task_resolved(found: bool, _task_id=task_id, _origin=origin) -> None:
            self.events.put(("done", _task_id, _origin, bool(found),
                             self._flush_emissions()))

        root_frame.on_resolve = task_resolved

    @staticmethod
    def _origin_of(task_id: str):
        # Stolen tasks are named "steal-<donor>:<seq>"; initial tasks "init-<n>".
        if task_id.startswith("steal-"):
            donor, _, sequence = task_id[len("steal-"):].partition(":")
            return int(donor), task_id[len("steal-"):]
        return None

    def _flush_emissions(self) -> list[frozenset]:
        # Copy-and-clear in place: every engine holds ``self.emissions.append``
        # as its on_output, so rebinding the attribute would strand them on a
        # dead list and silently drop their outputs.
        flushed = self.emissions[:]
        self.emissions.clear()
        return flushed

    def run_task(self, task_id: str, token: str, s_mask: int, c_mask: int,
                 d_mask: int) -> None:
        fault_point("worker.task")
        engine = self.engine_for(token)
        self.active_task = (task_id, token)
        started = time.perf_counter()
        engine.enumerate_branch(Branch(s_mask, c_mask, d_mask),
                                scheduler=self.scheduler)
        self.busy_seconds += time.perf_counter() - started
        self.active_task = None

    # -- scheduler callbacks -------------------------------------------
    def poll(self, scheduler: StealScheduler) -> None:
        self.drain_inbox()
        if self.cooldown > 0:
            self.cooldown -= 1
            return
        if self._should_offer() and self._publish_steal(scheduler):
            self.cooldown = _STEAL_COOLDOWN_POLLS

    def _should_offer(self) -> bool:
        if self.config.steal_schedule is not None:
            return self.config.steal_schedule(self)
        return self.hungry is not None and self.hungry.value > 0

    def _publish_steal(self, scheduler: StealScheduler) -> bool:
        stolen = scheduler.steal()
        if stolen is None:
            return False
        state, frame = stolen
        self.steal_sequence += 1
        steal_id = f"{self.worker_id}:{self.steal_sequence}"
        task_id = f"steal-{steal_id}"
        _active_id, token = self.active_task
        self.parked[steal_id] = (frame, scheduler.close)
        # Announce first so the coordinator learns of the new task before any
        # chance of seeing its done; it still tolerates the reverse order.
        self.events.put(("steal", task_id))
        self.tasks.put(("task", task_id, token,
                        state.s_mask, state.c_mask, state.d_mask))
        self.steals_published += 1
        return True

    def drain_inbox(self) -> None:
        while True:
            try:
                message = self.inbox.get_nowait()
            except Empty:
                return
            _kind, steal_id, found = message
            frame, close = self.parked.pop(steal_id)
            contribute_steal_result(frame, found, close)

    # -- main loop ------------------------------------------------------
    def loop(self) -> None:
        idle_since = None
        while True:
            self.drain_inbox()
            if idle_since is None:
                idle_since = time.perf_counter()
                if self.hungry is not None:
                    with self.hungry.get_lock():
                        self.hungry.value += 1
            try:
                message = self.tasks.get(timeout=0.02)
            except Empty:
                continue
            if self.hungry is not None:
                with self.hungry.get_lock():
                    self.hungry.value -= 1
            gap_ms = int((time.perf_counter() - idle_since) * 1000)
            if len(self.idle_gaps_ms) < 512:
                self.idle_gaps_ms.append(gap_ms)
            idle_since = None
            if message[0] == "stop":
                return
            _kind, task_id, token, s_mask, c_mask, d_mask = message
            self.run_task(task_id, token, s_mask, c_mask, d_mask)

    def farewell(self) -> None:
        """Send this worker's accumulated statistics and telemetry."""
        stats = SearchStatistics()
        for engine in self.engines.values():
            stats.merge(engine.statistics)
        stats.steals = self.steals_published
        stats.parallel_busy_seconds = self.busy_seconds
        self.events.put(("bye", self.worker_id, stats, self.busy_seconds,
                         self.idle_gaps_ms))


def _branch_worker_main(worker_id: int, tasks, events, inbox, hungry,
                        config: _BranchWorkerConfig) -> None:
    runtime = _WorkerRuntime(worker_id, tasks, events, inbox, hungry, config)
    try:
        runtime.loop()
        if runtime.parked:  # pragma: no cover - protocol invariant
            raise ReproError(f"worker {worker_id} stopped with "
                             f"{len(runtime.parked)} unresolved steals")
        runtime.farewell()
    except Exception:  # pragma: no cover - surfaced as WorkerCrash
        events.put(("error", worker_id, traceback.format_exc()))
    finally:
        runtime.cache.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


def branch_parallel_enumerate(subproblems, gamma: float, theta: int, *,
                              branching: str = "hybrid",
                              kernel: str = "ledger", workers: int = 2,
                              steal_schedule=None,
                              poll_period: int = DEFAULT_POLL_PERIOD,
                              liveness_interval: float = 0.2):
    """Enumerate compact subproblems with work-stealing branch parallelism.

    Returns ``(candidates, statistics, telemetry)``: the union of worker
    emissions as a set of frozensets, the merged per-worker
    :class:`SearchStatistics` (branch counts add up exactly to the sequential
    driver's — every branch is expanded once, somewhere), and a telemetry dict
    (``steals``, ``busy_seconds``, ``wall_seconds``, ``idle_gaps_ms``,
    ``workers``, ``worker_branches``).

    Raises :class:`WorkerCrash` when a worker dies mid-run; the caller is
    expected to fall back to the sequential driver.  Shared-memory segments
    are unlinked on every path, including crashes.
    """
    if workers < 2:
        raise ValueError("branch-parallel enumeration needs >= 2 workers")
    subproblems = list(subproblems)
    context = _context()
    store = SharedSubproblemStore()
    tasks = context.Queue()
    events = context.Queue()
    inboxes = [context.Queue() for _ in range(workers)]
    hungry = context.Value("i", 0)
    config = _BranchWorkerConfig(gamma=gamma, theta=theta, branching=branching,
                                 kernel=kernel, poll_period=poll_period,
                                 steal_schedule=steal_schedule)
    processes = [
        context.Process(target=_branch_worker_main,
                        args=(index, tasks, events, inboxes[index], hungry,
                              config),
                        daemon=True)
        for index in range(workers)
    ]
    started = time.perf_counter()
    results: set[frozenset] = set()
    statistics = SearchStatistics()
    telemetry = {"steals": 0, "busy_seconds": 0.0, "idle_gaps_ms": [],
                 "workers": workers, "wall_seconds": 0.0,
                 "worker_branches": {}}
    try:
        # Publish every segment *before* forking: the first registration
        # lazily spawns the parent's resource-tracker process, and workers
        # must inherit that tracker — a worker whose first shm registration
        # happens post-fork with no inherited tracker would spawn a private
        # one that tries to "clean up" the parent's segments when it exits.
        announced: set[str] = set()
        for index, subproblem in enumerate(subproblems):
            token = store.publish(subproblem)
            root = subproblem.initial_branch()
            task_id = f"init-{index}"
            announced.add(task_id)
            tasks.put(("task", task_id, token,
                       root.s_mask, root.c_mask, root.d_mask))
        for process in processes:
            process.start()
        outstanding = len(announced)
        pending_dones: dict[str, tuple] = {}

        def check_liveness() -> None:
            for process in processes:
                if not process.is_alive():
                    raise WorkerCrash(
                        f"branch-parallel worker pid={process.pid} died "
                        f"(exitcode={process.exitcode})")

        def apply_done(message) -> None:
            nonlocal outstanding
            _kind, _task_id, origin, found, emissions = message
            results.update(emissions)
            if origin is not None:
                donor, steal_id = origin
                inboxes[donor].put(("steal_result", steal_id, found))
            outstanding -= 1

        while outstanding > 0 or pending_dones:
            try:
                message = events.get(timeout=liveness_interval)
            except Empty:
                check_liveness()
                continue
            kind = message[0]
            if kind == "steal":
                task_id = message[1]
                announced.add(task_id)
                outstanding += 1
                held = pending_dones.pop(task_id, None)
                if held is not None:
                    apply_done(held)
            elif kind == "done":
                task_id = message[1]
                if task_id in announced:
                    apply_done(message)
                else:
                    # The thief's done overtook the donor's announce.
                    pending_dones[task_id] = message
            elif kind == "error":
                raise WorkerCrash(f"branch-parallel worker {message[1]} "
                                  f"raised:\n{message[2]}")

        for _ in processes:
            tasks.put(("stop",))
        farewells = 0
        while farewells < len(processes):
            try:
                message = events.get(timeout=liveness_interval)
            except Empty:
                check_liveness()
                continue
            if message[0] == "bye":
                _kind, worker_id, worker_stats, busy, idle_gaps = message
                statistics.merge(worker_stats)
                telemetry["busy_seconds"] += busy
                telemetry["idle_gaps_ms"].extend(idle_gaps)
                # Per-worker branch counts: max/total is the run's critical
                # path, the machine-independent bound on parallel speedup the
                # benchmarks record alongside wall clock.
                telemetry["worker_branches"][worker_id] = (
                    worker_stats.branches_explored)
                farewells += 1
            elif message[0] == "error":
                raise WorkerCrash(f"branch-parallel worker {message[1]} "
                                  f"raised:\n{message[2]}")
        for process in processes:
            process.join(timeout=10)
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=10)
        store.close()
    telemetry["steals"] = statistics.steals
    telemetry["wall_seconds"] = time.perf_counter() - started
    return results, statistics, telemetry


# ----------------------------------------------------------------------
# Inline protocol model (deterministic, single-process) for parity tests
# ----------------------------------------------------------------------
class InlineStealRuntime:
    """Single-process model of the steal protocol with synchronous thieves.

    Drives the *same* scheduler/driver surfaces as the multiprocessing
    runtime, but a "stolen" subtree is enumerated immediately by a fresh
    sequential thief engine over the same compact graphs, and its exact driver
    verdict is contributed straight back.  With a seeded
    :class:`ForcedStealSchedule` the steal points are fully deterministic,
    which is what the branch-for-branch differential tests sweep.
    """

    def __init__(self, make_engine, schedule,
                 period: int = 4) -> None:
        self._make_engine = make_engine
        self._schedule = schedule
        self.scheduler = StealScheduler(self, period=period)
        self.thief_engines: list[FastQC] = []
        self.steals = 0
        self.root_result: bool | None = None

    def bind_root_frame(self, root_frame) -> None:
        def record(found: bool) -> None:
            self.root_result = found
        root_frame.on_resolve = record

    def poll(self, scheduler: StealScheduler) -> None:
        if not self._schedule(self):
            return
        stolen = scheduler.steal()
        if stolen is None:
            return
        state, frame = stolen
        thief = self._make_engine()
        self.thief_engines.append(thief)
        thief.enumerate_branch(Branch(state.s_mask, state.c_mask,
                                      state.d_mask))
        self.steals += 1
        contribute_steal_result(frame, thief.last_branch_found,
                                scheduler.close)

    def enumerate(self, engine: FastQC, branch: Branch) -> list[frozenset]:
        """Run one task under this runtime and return the donor's emissions."""
        outputs = engine.enumerate_branch(branch, scheduler=self.scheduler)
        # Synchronous thieves contribute before the driver returns, so the
        # root always resolves locally here.
        assert self.root_result is not None or engine.stopped
        return outputs
