"""Extensions beyond the core MQCE pipeline.

These implement the problem variants the paper discusses in its related work
and conclusion: top-k largest quasi-clique mining (kernel expansion), query-
driven quasi-clique search, and a parallel divide-and-conquer driver.
"""

from .topk import (
    expand_kernel,
    find_largest_quasi_cliques,
    kernel_expansion_top_k,
    largest_quasi_clique_size,
    top_k_summary,
)
from .query import QueryError, community_of, find_quasi_cliques_containing
from .parallel import (PARALLEL_MODES, ParallelDCFastQC, parallel_enumerate,
                       run_compact_subproblem)
from .stealing import (ForcedStealSchedule, WorkerCrash,
                       branch_parallel_enumerate)

__all__ = [
    "expand_kernel",
    "find_largest_quasi_cliques",
    "kernel_expansion_top_k",
    "largest_quasi_clique_size",
    "top_k_summary",
    "QueryError",
    "community_of",
    "find_quasi_cliques_containing",
    "PARALLEL_MODES",
    "ParallelDCFastQC",
    "parallel_enumerate",
    "run_compact_subproblem",
    "ForcedStealSchedule",
    "WorkerCrash",
    "branch_parallel_enumerate",
]
