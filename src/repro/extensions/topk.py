"""Top-k largest quasi-clique mining (the related-work problem of [34, 35]).

The paper's Section 7 discusses the problem of finding the k *largest*
gamma-quasi-cliques instead of all maximal ones, and the kernel-expansion
strategy used for it: first mine denser gamma'-quasi-cliques (gamma' > gamma),
which are fast to find, use them as kernels, and grow each kernel greedily into
a large gamma-quasi-clique.  This module provides both

* :func:`find_largest_quasi_cliques` — exact top-k by running the (DC)FastQC
  pipeline with a shrinking size threshold, and
* :func:`kernel_expansion_top_k` — the heuristic kernel-expansion method, which
  is much faster on large inputs but only returns quasi-cliques containing a
  kernel (the same trade-off the paper points out).

Both entry points also accept a :class:`repro.engine.PreparedGraph` in place
of the graph; the exact search then starts from the prepared degeneracy-based
size upper bound instead of ``|V| / 2``, skipping the doomed early rounds of
the halving schedule.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

from ..core.dcfastqc import DCFastQC
from ..graph.graph import Graph
from ..quasiclique.definitions import is_quasi_clique, validate_parameters
from ..quasiclique.maximality import extending_vertices
from ..settrie.filter import filter_non_maximal


def _unwrap_prepared(graph):
    """Split a Graph-or-PreparedGraph argument into (graph, prepared-or-None)."""
    # Imported lazily: repro.engine itself builds on these extension modules.
    from ..engine.prepared import PreparedGraph

    if isinstance(graph, PreparedGraph):
        return graph.graph, graph
    return graph, None


def find_largest_quasi_cliques(graph: Graph, gamma: float, k: int = 1,
                               minimum_size: int = 2) -> list[frozenset]:
    """Return the ``k`` largest maximal gamma-quasi-cliques (exact).

    .. deprecated::
        This kwargs entry point is superseded by the top-k workload of the
        :class:`repro.api.QuerySpec` API
        (``Q(graph).gamma(gamma).theta(minimum_size).top(k).run()``); it now
        builds the equivalent spec, delegates to
        :func:`repro.api.execute.topk_search` and emits a
        :class:`DeprecationWarning`.

    The search runs the MQCE pipeline with a size threshold that starts high
    and halves until at least ``k`` maximal quasi-cliques of that size exist
    (or the threshold reaches ``minimum_size``).  Ties are broken
    deterministically by the sorted vertex labels.

    Parameters
    ----------
    graph, gamma:
        The input graph and degree fraction (gamma in [0.5, 1]).
    k:
        How many quasi-cliques to return (fewer are returned when the graph
        holds fewer maximal quasi-cliques of size >= minimum_size).
    minimum_size:
        Lower bound on the size threshold the search is willing to drop to.
    """
    warnings.warn(
        "find_largest_quasi_cliques() is deprecated; use the QuerySpec top-k "
        "workload (Q(graph).gamma(...).theta(...).top(k).run() or "
        "MQCEEngine.query with a spec)",
        DeprecationWarning, stacklevel=2)
    from ..api.execute import topk_search
    from ..api.spec import QuerySpec

    graph, prepared = _unwrap_prepared(graph)
    validate_parameters(gamma, max(1, minimum_size))
    if k < 1:
        raise ValueError("k must be a positive integer")
    if graph.vertex_count == 0:
        return []
    spec = QuerySpec(gamma=gamma, theta=max(1, minimum_size), k=k,
                     algorithm="dcfastqc")
    bound = prepared.size_upper_bound(gamma) if prepared is not None else None
    return list(topk_search(graph, spec, size_bound=bound).maximal_quasi_cliques)


def expand_kernel(graph: Graph, kernel: frozenset, gamma: float) -> frozenset:
    """Greedily grow a quasi-clique from a kernel while it stays a gamma-QC.

    At each step the extension vertex keeping the highest internal degree is
    added; the expansion stops when no single vertex extends the current set
    (the same stopping rule as the maximality necessary condition).
    """
    graph, _ = _unwrap_prepared(graph)
    current = frozenset(kernel)
    if not is_quasi_clique(graph, current, gamma):
        return current
    while True:
        extensions = extending_vertices(graph, current, gamma)
        if not extensions:
            return current
        best = max(extensions,
                   key=lambda v: (len(graph.neighbors(v) & current), str(v)))
        current = current | {best}


def kernel_expansion_top_k(graph: Graph, gamma: float, k: int = 1,
                           kernel_gamma: float | None = None,
                           kernel_theta: int = 3) -> list[frozenset]:
    """Heuristic top-k largest gamma-quasi-cliques via kernel expansion.

    Kernels are the maximal ``kernel_gamma``-quasi-cliques (default:
    ``min(1.0, gamma + 0.05)``) of size at least ``kernel_theta``; each kernel
    is greedily expanded under the target ``gamma``.  The result is a list of
    up to ``k`` distinct quasi-cliques sorted by decreasing size.  Unlike
    :func:`find_largest_quasi_cliques` the answer is not guaranteed to contain
    the true largest quasi-clique (kernels may miss it), mirroring the
    trade-off of the kernel-expansion literature.
    """
    graph, _ = _unwrap_prepared(graph)
    validate_parameters(gamma, kernel_theta)
    if k < 1:
        raise ValueError("k must be a positive integer")
    if kernel_gamma is None:
        kernel_gamma = min(1.0, round(gamma + 0.05, 3))
    if kernel_gamma < gamma:
        raise ValueError("kernel_gamma must be at least gamma")
    kernels = filter_non_maximal(
        DCFastQC(graph, kernel_gamma, kernel_theta).enumerate(), theta=kernel_theta)
    expanded: set[frozenset] = set()
    for kernel in kernels:
        grown = expand_kernel(graph, kernel, gamma)
        if is_quasi_clique(graph, grown, gamma):
            expanded.add(grown)
    ranked = sorted(expanded, key=lambda clique: (-len(clique), sorted(map(str, clique))))
    return ranked[:k]


def largest_quasi_clique_size(graph: Graph, gamma: float, minimum_size: int = 2) -> int:
    """Return the number of vertices of the largest gamma-quasi-clique (exact)."""
    from ..api.execute import topk_search
    from ..api.spec import QuerySpec

    graph, prepared = _unwrap_prepared(graph)
    validate_parameters(gamma, max(1, minimum_size))
    if graph.vertex_count == 0:
        return 0
    spec = QuerySpec(gamma=gamma, theta=max(1, minimum_size), k=1,
                     algorithm="dcfastqc")
    bound = prepared.size_upper_bound(gamma) if prepared is not None else None
    top = topk_search(graph, spec, size_bound=bound).maximal_quasi_cliques
    return len(top[0]) if top else 0


def top_k_summary(cliques: Sequence[frozenset]) -> list[dict]:
    """Small helper: one row per returned quasi-clique (size + members)."""
    return [{"rank": rank + 1, "size": len(clique),
             "members": tuple(sorted(map(str, clique)))}
            for rank, clique in enumerate(cliques)]
