"""Dataset registry: deterministic synthetic analogues of the paper's datasets.

The paper evaluates on 14 real KONECT graphs (Table 1) plus Erdos–Renyi
synthetic graphs.  The real graphs cannot be downloaded in this offline
environment and are far too large for a pure-Python branch-and-bound anyway,
so each of them is replaced by a *scaled-down synthetic analogue* that keeps
the characteristics the algorithms respond to:

* sparse backgrounds with skewed degree distributions (Barabasi–Albert) or
  near-uniform sparse backgrounds (Erdos–Renyi), mirroring the original
  domain (collaboration, social, web, road, k-mer, ...),
* a controllable number of planted gamma-quasi-cliques whose sizes straddle
  the default theta, so the default settings return a non-trivial number of
  MQCs, and
* per-dataset default gamma / theta in the same spirit as the paper
  (gamma = 0.9 for most, 0.96 for the densest, 0.51 for the road-like graphs).

Every dataset is fully deterministic (fixed seeds), and the paper's original
Table 1 statistics are retained alongside for the experiment reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.generators import barabasi_albert, erdos_renyi_gnm, planted_quasi_clique
from ..graph.graph import Graph


@dataclass(frozen=True)
class PaperStats:
    """The columns of the paper's Table 1 for the original real dataset."""

    vertices: int
    edges: int
    max_degree: int
    degeneracy: int
    theta_default: int
    gamma_default: float
    mqc_count: int


@dataclass(frozen=True)
class DatasetSpec:
    """A synthetic analogue of one of the paper's datasets."""

    name: str
    description: str
    background: str            # "ba" (skewed degrees) or "er" (uniform sparse)
    vertices: int
    background_density: float  # |E| / |V| of the background graph
    planted_sizes: tuple[int, ...]
    planted_gamma: float
    default_gamma: float
    default_theta: int
    seed: int
    paper: PaperStats
    tags: tuple[str, ...] = field(default_factory=tuple)

    def build(self) -> Graph:
        """Materialise the dataset graph deterministically."""
        rng = random.Random(self.seed)
        if self.background == "ba":
            attachment = max(1, int(round(self.background_density)))
            graph = barabasi_albert(self.vertices, attachment, seed=rng.randrange(2 ** 31))
        elif self.background == "er":
            edges = int(round(self.background_density * self.vertices))
            graph = erdos_renyi_gnm(self.vertices, edges, seed=rng.randrange(2 ** 31))
        else:
            raise ValueError(f"unknown background model {self.background!r}")
        start = 0
        for size in self.planted_sizes:
            members = range(start, min(start + size, self.vertices))
            planted_quasi_clique(graph, list(members), self.planted_gamma,
                                 seed=rng.randrange(2 ** 31))
            start += size + 3  # small gap so planted groups do not overlap
        return graph


def _spec(name, description, background, vertices, density, planted, planted_gamma,
          gamma, theta, seed, paper, tags=()):
    return DatasetSpec(
        name=name, description=description, background=background, vertices=vertices,
        background_density=density, planted_sizes=tuple(planted),
        planted_gamma=planted_gamma, default_gamma=gamma, default_theta=theta,
        seed=seed, paper=paper, tags=tuple(tags))


#: The registry, keyed by dataset name (lower-case, as in Table 1).
REGISTRY: dict[str, DatasetSpec] = {spec.name: spec for spec in [
    _spec("ca-grqc", "Collaboration network analogue (Ca-GrQC)", "ba", 260, 2.8,
          [10, 9, 9, 8, 8], 0.92, 0.9, 7, 101,
          PaperStats(5242, 14496, 81, 43, 10, 0.9, 1665), tags=("default-figure",)),
    _spec("opsahl", "Forum interaction analogue (Opsahl)", "er", 180, 5.3,
          [12, 11, 10, 9], 0.92, 0.9, 8, 102,
          PaperStats(2939, 15677, 473, 28, 20, 0.9, 34508)),
    _spec("condmat", "Collaboration network analogue (CondMat)", "ba", 320, 4.4,
          [10, 9, 9, 8], 0.92, 0.9, 7, 103,
          PaperStats(39577, 175691, 278, 29, 10, 0.9, 7222)),
    _spec("enron", "Email network analogue (Enron)", "ba", 300, 5.0,
          [13, 12, 11, 10], 0.93, 0.9, 9, 104,
          PaperStats(36692, 183831, 1383, 43, 23, 0.9, 200), tags=("default-figure",)),
    _spec("douban", "Social network analogue (Douban)", "ba", 360, 2.1,
          [9, 9, 8], 0.92, 0.9, 7, 105,
          PaperStats(154908, 327162, 287, 15, 12, 0.9, 26)),
    _spec("wordnet", "Lexical network analogue (WordNet)", "ba", 340, 4.5,
          [11, 10, 9, 9], 0.92, 0.9, 8, 106,
          PaperStats(146005, 656999, 1008, 31, 14, 0.9, 2515), tags=("default-figure",)),
    _spec("twitter", "Sparse follower network analogue (Twitter)", "ba", 420, 1.8,
          [7, 7, 6], 0.92, 0.9, 5, 107,
          PaperStats(465017, 833540, 677, 30, 6, 0.9, 11)),
    _spec("hyves", "Social network analogue (Hyves)", "ba", 400, 2.0,
          [12, 11, 10], 0.93, 0.9, 9, 108,
          PaperStats(1402673, 2777419, 31883, 39, 23, 0.9, 114), tags=("default-figure",)),
    _spec("trec", "Web document network analogue (Trec)", "ba", 380, 4.2,
          [14, 13, 12, 11], 0.97, 0.96, 10, 109,
          PaperStats(1601787, 6679248, 25609, 140, 50, 0.96, 682736)),
    _spec("flixster", "Social rating network analogue (Flixster)", "ba", 400, 3.1,
          [13, 12, 11], 0.97, 0.96, 10, 110,
          PaperStats(2523386, 7918801, 1474, 123, 35, 0.96, 22853)),
    _spec("pokec", "Social network analogue (Pokec)", "ba", 360, 6.0,
          [13, 12], 0.92, 0.9, 10, 111,
          PaperStats(1632803, 22301964, 20518, 47, 32, 0.9, 7), tags=("default-figure",)),
    _spec("fullusa", "Road network analogue (FullUSA)", "er", 500, 1.2,
          [6, 6, 5], 0.6, 0.51, 4, 112,
          PaperStats(23947347, 28854312, 9, 3, 3, 0.51, 35)),
    _spec("kmer", "K-mer overlap graph analogue (Kmer)", "er", 520, 1.05,
          [8, 7, 7], 0.6, 0.51, 6, 113,
          PaperStats(67716231, 69389281, 35, 6, 10, 0.51, 146)),
    _spec("uk2002", "Web crawl analogue (UK2002)", "ba", 450, 6.5,
          [18, 16, 15], 0.97, 0.96, 12, 114,
          PaperStats(18483186, 261787258, 194955, 943, 450, 0.96, 6)),
]}

#: The four datasets the paper uses for the parameter-sweep figures.
DEFAULT_FIGURE_DATASETS = ("enron", "wordnet", "hyves", "pokec")


def dataset_names() -> list[str]:
    """Return every registered dataset name in Table 1 order."""
    return list(REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    """Return the specification of a registered dataset."""
    key = name.lower()
    if key not in REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {', '.join(REGISTRY)}")
    return REGISTRY[key]


def load_dataset(name: str) -> Graph:
    """Build and return the synthetic analogue graph of a registered dataset."""
    return get_spec(name).build()


def load_prepared(name: str):
    """Build a registered dataset as an engine :class:`~repro.engine.PreparedGraph`.

    Convenience for query-engine workloads: the returned prepared graph
    carries the dataset name (shown by ``repro engine explain``/``stats``) and
    memoizes the preprocessing across every query made against it.
    """
    from ..engine.prepared import PreparedGraph  # lazy: engine builds on datasets users

    return PreparedGraph(load_dataset(name), name=get_spec(name).name)


def load_dynamic(name: str):
    """Build a registered dataset wrapped in a :class:`~repro.dynamic.DynamicEngine`.

    Convenience for update workloads: the returned engine serves queries over
    the dataset graph and absorbs ``add_edge`` / ``remove_edge`` /
    ``add_vertex`` / ``remove_vertex`` mutations with incremental artifact
    patching and selective cache invalidation.
    """
    from ..dynamic.engine import DynamicEngine  # lazy: dynamic builds on datasets users

    return DynamicEngine(load_dataset(name), name=get_spec(name).name)


def default_parameters(name: str) -> tuple[float, int]:
    """Return the (gamma, theta) defaults of a registered dataset."""
    spec = get_spec(name)
    return spec.default_gamma, spec.default_theta
