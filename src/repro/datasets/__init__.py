"""Dataset registry with synthetic analogues of the paper's evaluation datasets."""

from .registry import (
    DEFAULT_FIGURE_DATASETS,
    REGISTRY,
    DatasetSpec,
    PaperStats,
    dataset_names,
    default_parameters,
    get_spec,
    load_dataset,
    load_dynamic,
    load_prepared,
)

__all__ = [
    "DEFAULT_FIGURE_DATASETS",
    "REGISTRY",
    "DatasetSpec",
    "PaperStats",
    "dataset_names",
    "default_parameters",
    "get_spec",
    "load_dataset",
    "load_dynamic",
    "load_prepared",
]
