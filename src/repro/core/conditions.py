"""The SD-space necessary condition for a branch to hold quasi-cliques (Section 4.1).

A graph ``G[H]`` is mapped to the point ``(|H|, Delta(H))`` of the
*size–disconnection* (SD) space.  For a branch ``B = (S, C, D)``:

* **Region R1** (Condition C1): any QC under ``B`` satisfies
  ``|S| <= |H| <= |S ∪ C|`` and ``Delta(S) <= Delta(H) <= Delta(S ∪ C)``.
* **Region R2'** (Condition C2): any QC under ``B`` satisfies
  ``|S| <= |H| <= sigma(B)`` and ``Delta(H) <= tau(|H|)``, where
  ``sigma(B)`` (Equation 10) tightens the size upper bound using the minimum
  degree of a partial vertex and ``tau(x) = floor((1 - gamma) x + gamma)``.
* **Condition C1&2**: the branch may hold a QC only if the two regions
  intersect, which is equivalent to ``Delta(S) <= tau(sigma(B))`` (and
  ``sigma(B) >= |S|``).

Checking the condition costs ``O(d)`` per branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..graph.graph import Graph
from ..quasiclique.definitions import gamma_fraction, tau
from .branch import (
    Branch,
    max_disconnections_in_partial,
    max_disconnections_in_union,
    min_partial_degree_in_union,
)


def sigma(graph: Graph, branch: Branch, gamma: float) -> Fraction:
    """Return ``sigma(B)``, the (possibly fractional) size upper bound of Equation 10.

    ``sigma(B) = |S ∪ C|`` when ``S`` is empty, and otherwise
    ``min(|S ∪ C|, d_min(B) / gamma + 1)`` where ``d_min(B)`` is the minimum
    degree of a partial vertex within ``G[S ∪ C]`` (Lemma 2).  The value is an
    exact :class:`fractions.Fraction` so that ``tau(sigma(B))`` never suffers a
    floating-point rounding error at an integer boundary.
    """
    union_size = branch.union_size
    if branch.s_mask == 0:
        return Fraction(union_size)
    d_min = min_partial_degree_in_union(graph, branch)
    return min(Fraction(union_size), Fraction(d_min) / gamma_fraction(gamma) + 1)


def tau_sigma(graph: Graph, branch: Branch, gamma: float) -> int:
    """Return ``tau(sigma(B))``, the disconnection budget used everywhere in FastQC."""
    return tau(sigma(graph, branch, gamma), gamma)


@dataclass(frozen=True)
class SDRegions:
    """The SD-space regions of a branch, for inspection, tests and plots."""

    size_lower: int            # |S|
    size_upper_r1: int         # |S ∪ C|
    disconnection_lower: int   # Delta(S)
    disconnection_upper: int   # Delta(S ∪ C)
    size_upper_r2: Fraction    # sigma(B)
    tau_at_sigma: int          # tau(sigma(B))

    @property
    def r1_is_empty(self) -> bool:
        return (self.size_lower > self.size_upper_r1
                or self.disconnection_lower > self.disconnection_upper)

    @property
    def r2_is_empty(self) -> bool:
        return self.size_lower > self.size_upper_r2

    @property
    def intersection_is_empty(self) -> bool:
        """Emptiness of ``R1 ∩ R2'``; equivalent to the C1&2 test (Figure 4)."""
        if self.r1_is_empty or self.r2_is_empty:
            return True
        return self.disconnection_lower > self.tau_at_sigma


def sd_regions(graph: Graph, branch: Branch, gamma: float) -> SDRegions:
    """Compute the SD-space regions R1 and R2' of a branch."""
    sigma_value = sigma(graph, branch, gamma)
    return SDRegions(
        size_lower=branch.partial_size,
        size_upper_r1=branch.union_size,
        disconnection_lower=max_disconnections_in_partial(graph, branch),
        disconnection_upper=max_disconnections_in_union(graph, branch),
        size_upper_r2=sigma_value,
        tau_at_sigma=tau(sigma_value, gamma),
    )


def satisfies_condition_c1c2(graph: Graph, branch: Branch, gamma: float) -> bool:
    """Return True iff the branch satisfies the necessary condition C1&2.

    Branches that fail the condition hold no quasi-cliques and can be pruned.
    The check is the equivalent form ``Delta(S) <= tau(sigma(B))`` plus the
    emptiness guard ``sigma(B) >= |S|``.
    """
    sigma_value = sigma(graph, branch, gamma)
    if sigma_value < branch.partial_size:
        return False
    return max_disconnections_in_partial(graph, branch) <= tau(sigma_value, gamma)
