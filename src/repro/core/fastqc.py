"""FastQC (Algorithm 2): the paper's new branch-and-bound algorithm for MQCE-S1.

FastQC finds a set of gamma-quasi-cliques that contains every maximal
gamma-quasi-clique of size at least theta.  Compared with Quick+ it

1. progressively refines each branch with Refinement Rules 1 and 2 and
   re-checks the SD-space necessary condition C1&2 (Section 4.2),
2. terminates a branch early when the whole branch is a QC (condition T1) or
   when the size threshold cannot be met (condition T2), and
3. branches with the Hybrid-SE / Sym-SE methods driven by a pivot vertex
   (Sections 4.3–4.4), which yields the ``O(n * d * alpha_k^n)`` bound of
   Theorem 1.

Two interchangeable execution kernels drive the search (``kernel=``):

* ``"ledger"`` (default) — the incremental :mod:`repro.core.kernel`
  branch-state kernel: per-vertex degree ledgers updated in O(deg) per vertex
  move turn every per-branch quantity into an O(|S|) / O(|C|) array scan.
* ``"reference"`` — the original mask-based functions
  (:mod:`repro.core.refinement`, :mod:`repro.core.branching`), which recompute
  each quantity with per-vertex popcounts.  Kept as the differential-testing
  oracle; both kernels visit the same branch tree and emit the same outputs
  in the same order.

Either way the search runs on an explicit work stack
(:func:`repro.core.kernel.depth_first_enumerate`), so deep branch trees no
longer consume Python stack frames and no recursion-limit manipulation is
needed.  The engine works on branches over the input graph and never
materialises subgraphs itself, so it serves both the standalone FastQC entry
point and the DCFastQC divide-and-conquer driver (which seeds it with one
compact subproblem graph per subproblem).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..graph.graph import Graph, VertexLabel, iter_bits
from ..quasiclique.definitions import validate_parameters
from ..quasiclique.maximality import (
    mask_satisfies_maximality_necessary_condition,
    satisfies_maximality_necessary_condition,
)
from .branch import Branch, max_disconnections_in_union
from .branching import BRANCHING_METHODS, generate_branches, select_pivot
from .kernel import (
    KERNELS,
    BranchState,
    depth_first_enumerate,
    generate_child_states,
    pivot_from_state,
    refine_state,
    terminates_by_theta_state,
    union_min_degree,
)
from .refinement import progressively_refine
from .stats import SearchStatistics


class FastQC:
    """Branch-and-bound enumerator for the MQCE-S1 problem.

    Parameters
    ----------
    graph:
        The input graph.
    gamma:
        Degree fraction threshold, in ``[0.5, 1]``.
    theta:
        Minimum size of the quasi-cliques of interest (positive integer).
    branching:
        ``"hybrid"`` (paper default: Hybrid-SE when applicable, Sym-SE
        otherwise), ``"sym-se"`` or ``"se"``.
    kernel:
        ``"ledger"`` (default: incremental degree-ledger kernel) or
        ``"reference"`` (original mask/popcount implementation).  Both visit
        the same branch tree and produce identical outputs.
    maximality_filter:
        When True (default), outputs must pass the polynomial necessary
        condition of maximality, which discards many non-maximal QCs without
        ever discarding a maximal one.
    maximality_graph:
        The graph the maximality filter checks extensions against; defaults
        to ``graph``.  The DC driver passes the *full* graph here while
        enumerating a compact subproblem graph, so suppression decisions are
        identical to a whole-graph run.
    on_output:
        Optional callback invoked with each output vertex set (as a frozenset
        of labels) as it is found.
    should_stop:
        Optional zero-argument predicate polled at every branch.  When it
        returns True the search unwinds cooperatively: :attr:`stopped` is set
        and the results collected so far are kept.  This is how streaming
        callers enforce time budgets and cancellation.
    progress:
        Optional :class:`repro.obs.progress.ProgressTicker`.  The work-stack
        driver notifies it once per branch expansion; every N branches it
        fires its callback with elapsed time, branches/sec, stack depth and a
        live counter snapshot.  A cancelling callback stops the search
        exactly like ``should_stop`` (``stopped`` is set).
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "hybrid", kernel: str = "ledger",
                 maximality_filter: bool = True,
                 maximality_graph: Graph | None = None,
                 on_output: Callable[[frozenset], None] | None = None,
                 should_stop: Callable[[], bool] | None = None,
                 progress=None) -> None:
        validate_parameters(gamma, theta)
        if branching not in BRANCHING_METHODS:
            raise ValueError(f"branching must be one of {BRANCHING_METHODS}, got {branching!r}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.kernel = kernel
        self.maximality_filter = maximality_filter
        self.maximality_graph = maximality_graph if maximality_graph is not None else graph
        self.on_output = on_output
        self.should_stop = should_stop
        self.progress = progress
        self.stopped = False
        self.statistics = SearchStatistics()
        if progress is not None:
            progress.attach_statistics(self.statistics)
        self._results: list[frozenset] = []
        self._seen_masks: set[int] = set()
        #: Verdict of the most recent enumerate_branch (see its docstring).
        self.last_branch_found: bool | None = None

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def enumerate(self) -> list[frozenset]:
        """Run FastQC on the whole graph: ``FastQC-Rec(∅, V, ∅)``.

        Returns the found QCs as frozensets of vertex labels.  The result is a
        superset of all maximal gamma-QCs of size >= theta (MQCE-S1); pass it
        to :func:`repro.settrie.filter_non_maximal` to obtain the MQCs.
        """
        return self.enumerate_branch(Branch.initial(self.graph))

    def enumerate_from(self, partial: Iterable[VertexLabel],
                       candidates: Iterable[VertexLabel],
                       excluded: Iterable[VertexLabel] = ()) -> list[frozenset]:
        """Run FastQC on an explicit starting branch given by vertex labels."""
        branch = Branch(
            self.graph.mask_of(partial),
            self.graph.mask_of(candidates),
            self.graph.mask_of(excluded),
        )
        return self.enumerate_branch(branch)

    def enumerate_branch(self, branch: Branch,
                         scheduler=None) -> list[frozenset]:
        """Run FastQC starting from a prepared bitmask branch.

        ``scheduler`` (optional) enables the work-stealing driver variant
        (see :mod:`repro.extensions.stealing`): pending subtrees may be
        shipped to other workers, and the returned list then covers only the
        locally-emitted sets — remote emissions arrive via ``on_output`` on
        the thief's side.  :attr:`last_branch_found` records the driver's
        exact subtree verdict (True iff a quasi-clique was output anywhere in
        this branch's tree), or None when the root is still parked on stolen
        subtrees; it is the value the stealing protocol ships between workers
        so ancestors' ``G[S]`` fallback emissions stay branch-for-branch
        identical to the sequential driver.
        """
        self.statistics.subproblems += 1
        self.statistics.subproblem_sizes.record(branch.union_size)
        start = len(self._results)
        if self.kernel == "ledger":
            root = BranchState.from_branch(self.graph, branch, self.statistics)
            self.last_branch_found = depth_first_enumerate(
                root, self._expand_ledger, self._close,
                should_stop=self._poll_stop,
                ticker=self.progress, scheduler=scheduler)
        else:
            self.last_branch_found = depth_first_enumerate(
                branch, self._expand_reference, self._close,
                should_stop=self._poll_stop,
                ticker=self.progress, scheduler=scheduler)
        if self.progress is not None and self.progress.cancelled:
            self.stopped = True
        return self._results[start:]

    @property
    def results(self) -> list[frozenset]:
        """All outputs produced so far (across every call on this instance)."""
        return list(self._results)

    # ------------------------------------------------------------------
    # Search core (Algorithm 2 on an explicit work stack)
    # ------------------------------------------------------------------
    def _poll_stop(self) -> bool:
        """Cooperative cancellation: once stopped, every visit short-circuits."""
        if self.stopped or (self.should_stop is not None and self.should_stop()):
            self.stopped = True
            return True
        return False

    def _expand_ledger(self, state: BranchState):
        """One branch visit under the incremental degree-ledger kernel."""
        self.statistics.branches_explored += 1

        # Lines 3-7: progressive refinement and necessary-condition checking.
        pruned, tau_value, _rounds, removed1, removed2 = refine_state(
            state, self.gamma, self.theta)
        self.statistics.candidates_removed_by_refinement += removed1 + removed2
        if pruned:
            self.statistics.branches_pruned_by_condition += 1
            return False

        # Lines 8-10: termination T1 -- the whole branch is a quasi-clique.
        union_size = state.s_size + state.c_size
        min_deg_union, pivot_vertex = union_min_degree(state)
        if union_size - min_deg_union <= tau_value:
            self.statistics.branches_terminated_t1 += 1
            if union_size:
                return self._emit(state.union_mask)
            return False

        # Line 11: termination T2 -- the size threshold cannot be met.
        if terminates_by_theta_state(state, self.theta, tau_value):
            self.statistics.branches_terminated_t2 += 1
            return False

        # Lines 12-18: pivot selection and branching.  The union scan above
        # already found the pivot (the first vertex with the most
        # disconnections, which exceeds the budget because T1 failed).
        pivot = pivot_from_state(state, pivot_vertex, tau_value)
        children = generate_child_states(state, pivot, self.branching)

        # Lines 19-25 run in _close once every child subtree has completed.
        return children, state.s_mask

    def _expand_reference(self, branch: Branch):
        """One branch visit under the original mask/popcount implementation."""
        self.statistics.branches_explored += 1

        outcome = progressively_refine(self.graph, branch, self.gamma, self.theta)
        self.statistics.candidates_removed_by_refinement += (
            outcome.removed_by_rule1 + outcome.removed_by_rule2)
        if outcome.pruned:
            self.statistics.branches_pruned_by_condition += 1
            return False
        branch = outcome.branch
        tau_value = outcome.tau_value

        if max_disconnections_in_union(self.graph, branch) <= tau_value:
            self.statistics.branches_terminated_t1 += 1
            if branch.union_mask:
                return self._emit(branch.union_mask)
            return False

        if self._terminates_by_theta(branch, tau_value):
            self.statistics.branches_terminated_t2 += 1
            return False

        pivot = select_pivot(self.graph, branch, tau_value)
        if pivot is None:  # pragma: no cover - excluded by the T1 check above
            return self._emit(branch.union_mask)
        children = generate_branches(self.graph, branch, pivot, self.branching)
        return children, branch.s_mask

    def _close(self, s_mask: int, found_any: bool) -> bool:
        """Lines 19-25: output G[S] when no sub-branch found a QC."""
        if found_any:
            return True
        if s_mask and self._is_quasi_clique_mask(s_mask):
            return self._emit(s_mask)
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _terminates_by_theta(self, branch: Branch, tau_value: int) -> bool:
        """Termination condition T2 (Section 4.5), mask/popcount form."""
        if branch.union_size < self.theta:
            return True
        required = self.theta - tau_value
        if required <= 0:
            return False
        union = branch.union_mask
        for vertex in iter_bits(branch.s_mask):
            if (self.graph.adjacency_mask(vertex) & union).bit_count() < required:
                return True
        return False

    def _is_quasi_clique_mask(self, subset_mask: int) -> bool:
        """Lemma 1 check on a bitmask (valid because gamma >= 0.5)."""
        from ..quasiclique.definitions import mask_is_quasi_clique

        return mask_is_quasi_clique(self.graph, subset_mask, self.gamma)

    def _emit(self, subset_mask: int) -> bool:
        """Record an output set; returns True iff the branch holds a QC.

        Following Algorithm 2 the return value of the *branch* is True whenever
        the branch holds a QC, even when the output itself is suppressed by the
        size threshold or the maximality necessary condition (the suppressed
        set still proves that every subset-branch output would be non-maximal).
        The size and dedup checks run first so that repeat emissions of the
        same mask never pay for label materialisation or a maximality check;
        suppressed masks are remembered the same way.
        """
        if subset_mask.bit_count() < self.theta:
            return True
        if subset_mask in self._seen_masks:
            return True
        self._seen_masks.add(subset_mask)
        labels = self.graph.labels_of_mask(subset_mask)
        if self.maximality_filter and not self._passes_maximality(subset_mask, labels):
            self.statistics.outputs_suppressed_by_maximality += 1
            return True
        self._results.append(labels)
        self.statistics.outputs += 1
        if self.on_output is not None:
            self.on_output(labels)
        return True

    def _passes_maximality(self, subset_mask: int, labels: frozenset) -> bool:
        """The single-vertex-extension necessary condition of maximality.

        The ledger kernel uses the bitmask check (translating local masks to
        the maximality graph's index space when the two differ); the reference
        kernel keeps the original label-space check.  Both decide identically.
        """
        target = self.maximality_graph
        if self.kernel == "ledger":
            mask = subset_mask if target is self.graph else target.mask_of(labels)
            return mask_satisfies_maximality_necessary_condition(target, mask, self.gamma)
        return satisfies_maximality_necessary_condition(target, labels, self.gamma)


def fastqc_enumerate(graph: Graph, gamma: float, theta: int,
                     branching: str = "hybrid", kernel: str = "ledger",
                     maximality_filter: bool = True) -> list[frozenset]:
    """Functional convenience wrapper around :class:`FastQC`."""
    return FastQC(graph, gamma, theta, branching=branching, kernel=kernel,
                  maximality_filter=maximality_filter).enumerate()
