"""FastQC (Algorithm 2): the paper's new branch-and-bound algorithm for MQCE-S1.

FastQC finds a set of gamma-quasi-cliques that contains every maximal
gamma-quasi-clique of size at least theta.  Compared with Quick+ it

1. progressively refines each branch with Refinement Rules 1 and 2 and
   re-checks the SD-space necessary condition C1&2 (Section 4.2),
2. terminates a branch early when the whole branch is a QC (condition T1) or
   when the size threshold cannot be met (condition T2), and
3. branches with the Hybrid-SE / Sym-SE methods driven by a pivot vertex
   (Sections 4.3–4.4), which yields the ``O(n * d * alpha_k^n)`` bound of
   Theorem 1.

The implementation works on bitmask branches over the input graph and never
materialises subgraphs, so the same engine serves both the standalone FastQC
entry point and the DCFastQC divide-and-conquer driver (which seeds it with a
restricted branch per subproblem).
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Iterable

from ..graph.graph import Graph, VertexLabel, iter_bits
from ..quasiclique.definitions import validate_parameters
from ..quasiclique.maximality import satisfies_maximality_necessary_condition
from .branch import Branch, max_disconnections_in_union
from .branching import BRANCHING_METHODS, generate_branches, select_pivot
from .refinement import progressively_refine
from .stats import SearchStatistics


class FastQC:
    """Branch-and-bound enumerator for the MQCE-S1 problem.

    Parameters
    ----------
    graph:
        The input graph.
    gamma:
        Degree fraction threshold, in ``[0.5, 1]``.
    theta:
        Minimum size of the quasi-cliques of interest (positive integer).
    branching:
        ``"hybrid"`` (paper default: Hybrid-SE when applicable, Sym-SE
        otherwise), ``"sym-se"`` or ``"se"``.
    maximality_filter:
        When True (default), outputs must pass the polynomial necessary
        condition of maximality, which discards many non-maximal QCs without
        ever discarding a maximal one.
    on_output:
        Optional callback invoked with each output vertex set (as a frozenset
        of labels) as it is found.
    should_stop:
        Optional zero-argument predicate polled at every branch.  When it
        returns True the search unwinds cooperatively: :attr:`stopped` is set
        and the results collected so far are kept.  This is how streaming
        callers enforce time budgets and cancellation.
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "hybrid", maximality_filter: bool = True,
                 on_output: Callable[[frozenset], None] | None = None,
                 should_stop: Callable[[], bool] | None = None) -> None:
        validate_parameters(gamma, theta)
        if branching not in BRANCHING_METHODS:
            raise ValueError(f"branching must be one of {BRANCHING_METHODS}, got {branching!r}")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.maximality_filter = maximality_filter
        self.on_output = on_output
        self.should_stop = should_stop
        self.stopped = False
        self.statistics = SearchStatistics()
        self._results: list[frozenset] = []
        self._seen_masks: set[int] = set()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def enumerate(self) -> list[frozenset]:
        """Run FastQC on the whole graph: ``FastQC-Rec(∅, V, ∅)``.

        Returns the found QCs as frozensets of vertex labels.  The result is a
        superset of all maximal gamma-QCs of size >= theta (MQCE-S1); pass it
        to :func:`repro.settrie.filter_non_maximal` to obtain the MQCs.
        """
        return self.enumerate_branch(Branch.initial(self.graph))

    def enumerate_from(self, partial: Iterable[VertexLabel],
                       candidates: Iterable[VertexLabel],
                       excluded: Iterable[VertexLabel] = ()) -> list[frozenset]:
        """Run FastQC on an explicit starting branch given by vertex labels."""
        branch = Branch(
            self.graph.mask_of(partial),
            self.graph.mask_of(candidates),
            self.graph.mask_of(excluded),
        )
        return self.enumerate_branch(branch)

    def enumerate_branch(self, branch: Branch) -> list[frozenset]:
        """Run FastQC starting from a prepared bitmask branch."""
        self.statistics.subproblems += 1
        self.statistics.subproblem_sizes.append(branch.union_size)
        depth_needed = branch.union_size + 100
        previous_limit = sys.getrecursionlimit()
        if previous_limit < depth_needed + 1000:
            sys.setrecursionlimit(depth_needed + 1000)
        try:
            start = len(self._results)
            self._recurse(branch)
            return self._results[start:]
        finally:
            sys.setrecursionlimit(previous_limit)

    @property
    def results(self) -> list[frozenset]:
        """All outputs produced so far (across every call on this instance)."""
        return list(self._results)

    # ------------------------------------------------------------------
    # Recursive core (Algorithm 2)
    # ------------------------------------------------------------------
    def _recurse(self, branch: Branch) -> bool:
        """Return True iff a QC was output in this branch or any sub-branch."""
        if self.stopped or (self.should_stop is not None and self.should_stop()):
            # Cooperative cancellation: claim a QC was found so that no
            # ancestor branch emits its partial set G[S] during the unwind
            # (such fallback outputs are only meaningful for complete searches).
            self.stopped = True
            return True
        self.statistics.branches_explored += 1

        # Lines 3-7: progressive refinement and necessary-condition checking.
        outcome = progressively_refine(self.graph, branch, self.gamma, self.theta)
        self.statistics.candidates_removed_by_refinement += (
            outcome.removed_by_rule1 + outcome.removed_by_rule2)
        if outcome.pruned:
            self.statistics.branches_pruned_by_condition += 1
            return False
        branch = outcome.branch
        tau_value = outcome.tau_value

        # Lines 8-10: termination T1 -- the whole branch is a quasi-clique.
        if max_disconnections_in_union(self.graph, branch) <= tau_value:
            self.statistics.branches_terminated_t1 += 1
            if branch.union_mask:
                return self._emit(branch.union_mask)
            return False

        # Line 11: termination T2 -- the size threshold cannot be met.
        if self._terminates_by_theta(branch, tau_value):
            self.statistics.branches_terminated_t2 += 1
            return False

        # Lines 12-18: pivot selection and branching.
        pivot = select_pivot(self.graph, branch, tau_value)
        if pivot is None:  # pragma: no cover - excluded by the T1 check above
            return self._emit(branch.union_mask)
        children = generate_branches(self.graph, branch, pivot, self.branching)

        # Lines 19-25: recurse, and output G[S] when no sub-branch found a QC.
        found_any = False
        for child in children:
            if self._recurse(child):
                found_any = True
        if found_any:
            return True
        if branch.s_mask and self._is_quasi_clique_mask(branch.s_mask):
            return self._emit(branch.s_mask)
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _terminates_by_theta(self, branch: Branch, tau_value: int) -> bool:
        """Termination condition T2 (Section 4.5)."""
        if branch.union_size < self.theta:
            return True
        required = self.theta - tau_value
        if required <= 0:
            return False
        union = branch.union_mask
        for vertex in iter_bits(branch.s_mask):
            if (self.graph.adjacency_mask(vertex) & union).bit_count() < required:
                return True
        return False

    def _is_quasi_clique_mask(self, subset_mask: int) -> bool:
        """Lemma 1 check on a bitmask (valid because gamma >= 0.5)."""
        from ..quasiclique.definitions import mask_is_quasi_clique

        return mask_is_quasi_clique(self.graph, subset_mask, self.gamma)

    def _emit(self, subset_mask: int) -> bool:
        """Record an output set; returns True iff a QC was actually reported.

        Following Algorithm 2 the return value of the *branch* is True whenever
        the branch holds a QC, even when the output itself is suppressed by the
        size threshold or the maximality necessary condition (the suppressed
        set still proves that every subset-branch output would be non-maximal).
        """
        labels = self.graph.labels_of_mask(subset_mask)
        size_ok = subset_mask.bit_count() >= self.theta
        if size_ok and self.maximality_filter:
            if not satisfies_maximality_necessary_condition(self.graph, labels, self.gamma):
                self.statistics.outputs_suppressed_by_maximality += 1
                return True
        if size_ok and subset_mask not in self._seen_masks:
            self._seen_masks.add(subset_mask)
            self._results.append(labels)
            self.statistics.outputs += 1
            if self.on_output is not None:
                self.on_output(labels)
        return True


def fastqc_enumerate(graph: Graph, gamma: float, theta: int,
                     branching: str = "hybrid",
                     maximality_filter: bool = True) -> list[frozenset]:
    """Functional convenience wrapper around :class:`FastQC`."""
    return FastQC(graph, gamma, theta, branching=branching,
                  maximality_filter=maximality_filter).enumerate()
