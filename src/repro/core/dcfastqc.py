"""DCFastQC (Algorithm 3): the divide-and-conquer driver around FastQC.

For gamma >= 0.5 every quasi-clique has diameter at most 2 (Property 2), so an
MQC containing vertex ``v_i`` lives entirely inside the 2-hop neighbourhood of
``v_i``.  DCFastQC exploits that:

1. reduce the graph to its ``ceil(gamma * (theta - 1))``-core (every large QC
   survives the reduction),
2. compute a degeneracy ordering ``<v_1, ..., v_n>``,
3. for each ``v_i`` build ``V_i = Γ2(v_i, V) - {v_1, ..., v_{i-1}}``
   (Equation 19), shrink it with one-hop and two-hop pruning for
   ``MAX_ROUND`` rounds, and
4. run FastQC from the branch ``(S = {v_i}, C = V_i - {v_i}, D = {v_1..v_{i-1}})``.

Every MQC is found in exactly one subproblem (the one rooted at its
lowest-ordered vertex).  The ``framework`` parameter also provides the paper's
BDCFastQC ablation (the basic divide-and-conquer of [19, 24]: degree ordering
and one-hop shrinking only) and plain FastQC (no decomposition) for Figure 12.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from functools import lru_cache

from ..graph.graph import Graph, VertexLabel, iter_bits
from ..graph.core_decomposition import degeneracy_ordering_within, k_core_vertices
from ..graph.subgraph import compact_subgraph, two_hop_mask
from ..obs.trace import NULL_TRACER
from ..quasiclique.definitions import degree_threshold, gamma_pq, validate_parameters
from .branch import Branch
from .branching import BRANCHING_METHODS
from .fastqc import FastQC
from .kernel import KERNELS, ShrinkLedgers
from .stats import SearchStatistics

#: Supported divide-and-conquer frameworks (Figure 12 ablation).
DC_FRAMEWORKS = ("dc", "basic-dc", "none")

#: Default number of shrinking rounds (the paper finds MAX_ROUND = 2 sufficient).
DEFAULT_MAX_ROUNDS = 2


@dataclass
class SubproblemRecord:
    """Size bookkeeping for one divide-and-conquer subproblem (ablation data)."""

    root: VertexLabel
    initial_size: int
    refined_size: int


@dataclass(frozen=True)
class CompactSubproblem:
    """One divide-and-conquer subproblem remapped to a dense local index space.

    ``labels[i]`` is the original label of local index ``i`` and
    ``adjacency_masks[i]`` its neighbour bitmask *within the subproblem*, so
    bitmask and ledger widths track ``len(labels)`` instead of the input
    graph's vertex count.  The payload is a plain tuple-of-ints structure on
    purpose: :class:`repro.extensions.parallel.ParallelDCFastQC` pickles it to
    worker processes verbatim.

    ``halo_labels`` / ``halo_adjacency`` carry the subproblem's **one-hop
    maximality halo**: every full-graph neighbour of a subproblem member that
    is not itself a member, with its adjacency *into* the subproblem (a
    bitmask over the local ball indices).  Any single-vertex extension of a
    candidate ``H ⊆`` ball is adjacent to ``H``, so it lives in the ball or
    the halo, and deciding whether it extends ``H`` only consults edges into
    the ball — the halo therefore lets a worker that never sees the full
    graph reproduce the sequential driver's maximality filtering exactly.
    """

    root_local: int                 # local index of the subproblem root v_i
    labels: tuple                   # local index -> original label
    adjacency_masks: tuple[int, ...]
    halo_labels: tuple = ()         # one-hop neighbours outside the ball
    halo_adjacency: tuple[int, ...] = ()  # their adjacency into the ball

    def build_graph(self) -> Graph:
        """Materialise the subproblem graph (labels preserved)."""
        return Graph.from_dense_adjacency(self.labels, self.adjacency_masks)

    def build_maximality_graph(self) -> Graph:
        """Materialise the ball plus its one-hop halo (maximality surrogate).

        Halo vertices occupy the local indices after the ball; halo–halo
        edges are intentionally absent (the necessary-condition check adds
        one vertex at a time to a set inside the ball, so it never reads
        them).  Without a recorded halo this is just the ball graph.
        """
        if not self.halo_labels:
            return self.build_graph()
        ball_size = len(self.labels)
        combined = list(self.adjacency_masks)
        for offset, ball_adjacency in enumerate(self.halo_adjacency):
            halo_bit = 1 << (ball_size + offset)
            combined.append(ball_adjacency)
            for member in iter_bits(ball_adjacency):
                combined[member] |= halo_bit
        return Graph.from_dense_adjacency(self.labels + self.halo_labels, combined)

    def initial_branch(self) -> Branch:
        """The branch ``(S = {root}, C = rest, D = ∅)`` in local index space.

        The globally-excluded prior vertices of Equation 19 simply do not
        exist in the compact graph, so D starts empty.
        """
        root_bit = 1 << self.root_local
        full = (1 << len(self.labels)) - 1
        return Branch(root_bit, full & ~root_bit, 0)


@dataclass
class DCStatistics:
    """Statistics specific to the divide-and-conquer layer."""

    core_reduction_kept: int = 0
    core_reduction_removed: int = 0
    subproblem_records: list[SubproblemRecord] = field(default_factory=list)

    def reduction_ratio(self) -> float:
        """Average refined-subproblem size divided by the original graph size."""
        total = self.core_reduction_kept + self.core_reduction_removed
        if total == 0 or not self.subproblem_records:
            return 0.0
        average = sum(r.refined_size for r in self.subproblem_records) / len(self.subproblem_records)
        return average / total


@lru_cache(maxsize=4096)
def two_hop_pruning_threshold(gamma: float, theta: int, max_size: int) -> int:
    """Return the common-neighbour threshold ``f`` used by the two-hop pruning rule.

    For adjacent ``u`` and ``v_i`` inside a QC ``H`` with ``|H| = h`` the number
    of common neighbours within ``H`` is at least ``h - 2 * tau(h)``; for
    non-adjacent pairs it is at least ``h - 2 * tau(h) + 2``.  Since only
    ``theta <= h <= max_size`` matters, the provably safe threshold is the
    minimum of ``h - 2 * tau(h)`` over that range (which coincides with the
    paper's closed form ``theta - tau(theta) - tau(theta + 1)`` in practice).
    Evaluated in integer arithmetic over ``gamma = p/q``
    (``tau(h) = ((q-p)*h + p) // q``) and memoized: the shrinking loop
    re-evaluates it for every subproblem and round, over a small set of
    distinct ``max_size`` values.
    """
    if max_size < theta:
        return 0
    p, q = gamma_pq(gamma)
    d = q - p
    return min(h - 2 * ((d * h + p) // q) for h in range(theta, max_size + 1))


class DCFastQC:
    """Divide-and-conquer MQCE-S1 enumerator built on top of :class:`FastQC`.

    Parameters
    ----------
    graph:
        The input graph.
    gamma, theta:
        The MQCE parameters (gamma in [0.5, 1], theta >= 1).
    branching:
        Branching method passed to the underlying FastQC engine
        (``"hybrid"``, ``"sym-se"`` or ``"se"``).
    framework:
        ``"dc"`` (paper's framework: degeneracy ordering, one-hop + two-hop
        shrinking), ``"basic-dc"`` (BDCFastQC: degree ordering, one-hop
        shrinking only) or ``"none"`` (run FastQC on the whole graph).
    kernel:
        ``"ledger"`` (default) — each subproblem is remapped to a compact
        dense index space and enumerated with the incremental degree-ledger
        kernel, so bitmask and ledger widths track the subproblem size, not
        the graph.  ``"reference"`` — the original path: one shared FastQC
        engine branching over full-graph-width masks.
    max_rounds:
        Number of shrinking rounds applied to each subproblem (MAX_ROUND).
    maximality_filter:
        Forwarded to FastQC; filters outputs by the necessary condition of
        maximality (always checked against the *full* input graph, also when
        subproblems run on compact graphs).
    should_stop:
        Optional zero-argument predicate polled before every subproblem and at
        every FastQC branch; returning True stops the enumeration
        cooperatively (:attr:`stopped` is set, partial results are kept).
    progress:
        Optional :class:`repro.obs.progress.ProgressTicker`, shared across
        every per-subproblem engine so its branch count and counter snapshot
        cover the whole run; a cancelling callback stops like ``should_stop``.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When given, the driver records
        one ``decompose`` span (core reduction + ordering), a ``shrink`` span
        per subproblem, and — on the compact ledger path — a ``subproblem``
        span per enumeration with that subproblem's counter deltas.
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "hybrid", framework: str = "dc",
                 kernel: str = "ledger",
                 max_rounds: int = DEFAULT_MAX_ROUNDS,
                 maximality_filter: bool = True,
                 on_output: Callable[[frozenset], None] | None = None,
                 should_stop: Callable[[], bool] | None = None,
                 progress=None, tracer=None) -> None:
        validate_parameters(gamma, theta)
        if branching not in BRANCHING_METHODS:
            raise ValueError(f"branching must be one of {BRANCHING_METHODS}, got {branching!r}")
        if framework not in DC_FRAMEWORKS:
            raise ValueError(f"framework must be one of {DC_FRAMEWORKS}, got {framework!r}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.framework = framework
        self.kernel = kernel
        self.max_rounds = max_rounds
        self.maximality_filter = maximality_filter
        self.on_output = on_output
        self.should_stop = should_stop
        self.progress = progress
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stopped = False
        self.statistics = SearchStatistics()
        self.dc_statistics = DCStatistics()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def enumerate(self) -> list[frozenset]:
        """Enumerate a set of QCs containing every MQC of size >= theta (MQCE-S1)."""
        results: list[frozenset] = []
        for batch in self.iter_candidate_batches():
            results.extend(batch)
        return results

    def iter_candidate_batches(self) -> Iterator[list[frozenset]]:
        """Yield the MQCE-S1 candidates one divide-and-conquer subproblem at a time.

        Each yielded list holds the candidates found in one subproblem (the one
        rooted at the next vertex of the ordering); concatenating every batch
        gives exactly :meth:`enumerate`'s result.  The batch boundary carries a
        guarantee streaming consumers rely on: every output of subproblem ``i``
        contains its root ``v_i`` and no earlier-ordered vertex, so any proper
        superset of it in the full candidate set appears in a subproblem
        ``j <= i``.  Once a batch has been yielded, the maximality of its
        members is therefore decidable against the candidates seen so far.

        With ``framework="none"`` there is a single batch (the whole FastQC
        run), and no incremental guarantee beyond completeness.
        """
        if self.framework == "none":
            engine = FastQC(self.graph, self.gamma, self.theta,
                            branching=self.branching, kernel=self.kernel,
                            maximality_filter=self.maximality_filter,
                            on_output=self.on_output, should_stop=self.should_stop,
                            progress=self.progress)
            self.statistics = engine.statistics
            batch = engine.enumerate()
            self.stopped = engine.stopped
            yield batch
            return

        if self.kernel == "ledger":
            yield from self._iter_batches_compact()
            return

        # Reference path: one shared engine branching over global-width masks.
        engine = FastQC(self.graph, self.gamma, self.theta, branching=self.branching,
                        kernel=self.kernel, maximality_filter=self.maximality_filter,
                        on_output=self.on_output, should_stop=self.should_stop,
                        progress=self.progress)
        self.statistics = engine.statistics
        for root_index, refined_mask, prior_mask in self._iter_subproblems():
            if self.stopped:
                return
            branch = Branch(
                1 << root_index,
                refined_mask & ~(1 << root_index),
                prior_mask & ~(1 << root_index),
            )
            batch = engine.enumerate_branch(branch)
            self.stopped = engine.stopped
            yield batch
            if self.stopped:
                return

    def _iter_batches_compact(self) -> Iterator[list[frozenset]]:
        """Kernelized batches: each subproblem runs on its own compact graph.

        The per-subproblem FastQC engines carry ledgers and bitmasks whose
        width is the subproblem size; the maximality filter still checks
        extensions against the full input graph, so the emitted candidate
        sets are identical to the reference path's.  Statistics from every
        subproblem engine are merged into :attr:`statistics`.
        """
        self.statistics = SearchStatistics()
        if self.progress is not None:
            # The run-wide aggregate drives the heartbeat counter snapshot;
            # per-subproblem engine statistics must not displace it.
            self.progress.attach_statistics(self.statistics)
        for root_index, refined_mask, _prior_mask in self._iter_subproblems():
            if self.stopped:
                return
            subgraph = compact_subgraph(self.graph, refined_mask)
            root_local = (refined_mask & ((1 << root_index) - 1)).bit_count()
            engine = FastQC(subgraph, self.gamma, self.theta,
                            branching=self.branching, kernel="ledger",
                            maximality_filter=self.maximality_filter,
                            maximality_graph=self.graph,
                            on_output=self.on_output, should_stop=self.should_stop,
                            progress=self.progress)
            root_bit = 1 << root_local
            branch = Branch(root_bit, subgraph.full_mask() & ~root_bit, 0)
            with self.tracer.span("subproblem", stats=engine.statistics,
                                  root=str(self.graph.label_of(root_index)),
                                  size=subgraph.vertex_count):
                batch = engine.enumerate_branch(branch)
            self.statistics.merge(engine.statistics)
            self.statistics.subproblem_branches.record(
                engine.statistics.branches_explored)
            self.stopped = engine.stopped
            yield batch
            if self.stopped:
                return

    def iter_compact_subproblems(self) -> Iterator[CompactSubproblem]:
        """Yield every non-trivial subproblem as a picklable compact payload.

        This is the fan-out surface of
        :class:`repro.extensions.parallel.ParallelDCFastQC`: the parent
        process runs the cheap global preprocessing (core reduction, ordering,
        two-hop shrinking) and ships each subproblem as dense local-index
        adjacency — worker enumeration cost then scales with the subproblem,
        not the graph.
        """
        graph = self.graph
        for root_index, refined_mask, _prior_mask in self._iter_subproblems():
            if self.stopped:
                return
            subgraph = compact_subgraph(graph, refined_mask)
            root_local = (refined_mask & ((1 << root_index) - 1)).bit_count()
            # One-hop maximality halo: every outside neighbour of a member,
            # with its adjacency remapped into the ball's local index space.
            local_of = {global_index: local
                        for local, global_index in enumerate(iter_bits(refined_mask))}
            halo_mask = 0
            for member in local_of:
                halo_mask |= graph.adjacency_mask(member)
            halo_mask &= ~refined_mask
            halo_labels = []
            halo_adjacency = []
            for outside in iter_bits(halo_mask):
                into_ball = 0
                for member in iter_bits(graph.adjacency_mask(outside) & refined_mask):
                    into_ball |= 1 << local_of[member]
                halo_labels.append(graph.label_of(outside))
                halo_adjacency.append(into_ball)
            yield CompactSubproblem(
                root_local=root_local,
                labels=tuple(subgraph.vertices()),
                adjacency_masks=tuple(subgraph.adjacency_masks()),
                halo_labels=tuple(halo_labels),
                halo_adjacency=tuple(halo_adjacency),
            )

    def _iter_subproblems(self) -> Iterator[tuple[int, int, int]]:
        """Lines 2-6 of Algorithm 3: yield ``(root_index, refined_mask, prior_mask)``.

        Trivial subproblems (refined size below theta, or the root pruned by
        its own shrinking) are recorded in the DC statistics but not yielded.
        Sets :attr:`stopped` when ``should_stop`` fires between subproblems.
        """
        with self.tracer.span("decompose") as decompose_span:
            core_mask = self._core_reduction_mask()
            ordering = self._vertex_ordering(core_mask)
            decompose_span.annotate(
                core_kept=self.dc_statistics.core_reduction_kept,
                core_removed=self.dc_statistics.core_reduction_removed,
                ordering=len(ordering))
        graph = self.graph
        prior_mask = 0
        for root in ordering:
            if self.should_stop is not None and self.should_stop():
                self.stopped = True
                return
            root_index = graph.index_of(root)
            remaining = core_mask & ~prior_mask
            subproblem_mask = two_hop_mask(graph, root_index, remaining)
            initial_size = subproblem_mask.bit_count()
            with self.tracer.span("shrink", stats=self.statistics,
                                  root=str(root)) as shrink_span:
                refined_mask = self._shrink_subproblem(root_index, subproblem_mask)
                shrink_span.annotate(initial=initial_size,
                                     refined=refined_mask.bit_count())
            self.dc_statistics.subproblem_records.append(SubproblemRecord(
                root=root, initial_size=initial_size,
                refined_size=refined_mask.bit_count()))
            self.statistics.subproblem_sizes.record(refined_mask.bit_count())
            prior_mask |= 1 << root_index
            if refined_mask.bit_count() < self.theta or not (refined_mask >> root_index) & 1:
                continue
            yield root_index, refined_mask, prior_mask

    # ------------------------------------------------------------------
    # Divide-and-conquer internals
    # ------------------------------------------------------------------
    def _core_reduction_mask(self) -> int:
        """Line 1 of Algorithm 3: keep only the ``ceil(gamma*(theta-1))``-core."""
        core_order = degree_threshold(self.gamma, self.theta)
        kept = k_core_vertices(self.graph, core_order)
        self.dc_statistics.core_reduction_kept = len(kept)
        self.dc_statistics.core_reduction_removed = self.graph.vertex_count - len(kept)
        return self.graph.mask_of(kept)

    def _vertex_ordering(self, core_mask: int) -> list[VertexLabel]:
        """Line 2 of Algorithm 3: degeneracy ordering ("dc") or degree ordering ("basic-dc")."""
        kept_labels = self.graph.labels_of_mask(core_mask)
        if not kept_labels:
            return []
        if self.framework == "basic-dc":
            return sorted(kept_labels, key=lambda v: (self.graph.degree(v), self.graph.index_of(v)))
        # Restricted ordering without extracting the whole core as a compact
        # graph (O(core^2) bits — prohibitive on CSR-backed large graphs).
        # The tie-breaks are content-deterministic, so this equals ordering a
        # rebuilt copy of G[core_mask].
        return degeneracy_ordering_within(self.graph, core_mask)

    def _shrink_subproblem(self, root_index: int, subproblem_mask: int) -> int:
        """Lines 5-6 of Algorithm 3: one-hop and two-hop pruning for MAX_ROUND rounds.

        The ledger kernel runs the :class:`ShrinkLedgers` rules (store-free
        fused first passes, a bit-sliced bulk two-hop pass, ledger reads from
        the second pass of a rule on); the reference kernel keeps the
        original mask-based rounds, which re-popcount every member every
        round and serve as the differential oracle.  Both produce bit-for-bit
        identical refined sets.
        """
        if self.kernel == "ledger":
            return self._shrink_subproblem_ledger(root_index, subproblem_mask)
        use_two_hop = self.framework == "dc"
        required_degree = degree_threshold(self.gamma, self.theta)
        current = subproblem_mask
        for _ in range(self.max_rounds):
            before = current
            current = self._one_hop_prune(root_index, current, required_degree)
            if use_two_hop:
                current = self._two_hop_prune(root_index, current)
            if current == before:
                break
        return current

    def _shrink_subproblem_ledger(self, root_index: int, subproblem_mask: int) -> int:
        """Ledger-kernel form of :meth:`_shrink_subproblem`.

        The surviving vertex set is identical to the mask-based reference's;
        see :class:`ShrinkLedgers` for how the passes avoid re-popcounting.
        """
        if self.max_rounds == 0:
            return subproblem_mask
        use_two_hop = self.framework == "dc"
        required_degree = degree_threshold(self.gamma, self.theta)
        stats = self.statistics
        ledgers = ShrinkLedgers(self.graph, root_index, subproblem_mask,
                                stats=stats, track_common=use_two_hop)
        for _ in range(self.max_rounds):
            stats.shrink_rounds += 1
            removed = ledgers.one_hop_round(required_degree)
            stats.shrink_removed_one_hop += removed
            if use_two_hop:
                threshold = two_hop_pruning_threshold(
                    self.gamma, self.theta, ledgers.alive_count)
                dropped = ledgers.two_hop_round(threshold)
                stats.shrink_removed_two_hop += dropped
                removed += dropped
            if removed == 0:
                break
        return ledgers.alive_mask

    def _one_hop_prune(self, root_index: int, mask: int, required_degree: int) -> int:
        """Remove ``u != root`` with fewer than ``ceil(gamma*(theta-1))`` neighbours in V_i."""
        new_mask = mask
        for u in iter_bits(mask):
            if u == root_index:
                continue
            if (self.graph.adjacency_mask(u) & mask).bit_count() < required_degree:
                new_mask &= ~(1 << u)
        return new_mask

    def _two_hop_prune(self, root_index: int, mask: int) -> int:
        """Remove ``u != root`` with too few common neighbours with the root in V_i."""
        threshold = two_hop_pruning_threshold(self.gamma, self.theta, mask.bit_count())
        root_adjacency = self.graph.adjacency_mask(root_index) & mask
        new_mask = mask
        for u in iter_bits(mask):
            if u == root_index:
                continue
            common = (root_adjacency & self.graph.adjacency_mask(u) & mask).bit_count()
            if (root_adjacency >> u) & 1:
                if common < threshold:
                    new_mask &= ~(1 << u)
            else:
                if common < threshold + 2:
                    new_mask &= ~(1 << u)
        return new_mask


def dcfastqc_enumerate(graph: Graph, gamma: float, theta: int,
                       branching: str = "hybrid", framework: str = "dc",
                       kernel: str = "ledger",
                       max_rounds: int = DEFAULT_MAX_ROUNDS) -> list[frozenset]:
    """Functional convenience wrapper around :class:`DCFastQC`."""
    return DCFastQC(graph, gamma, theta, branching=branching, framework=framework,
                    kernel=kernel, max_rounds=max_rounds).enumerate()
