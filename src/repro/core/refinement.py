"""Progressive branch refinement (Section 4.2).

Given a branch ``B = (S, C, D)`` that satisfies the necessary condition C1&2,
the candidate set can often be shrunk with two rules driven by the
disconnection budget ``tau(sigma(B))``:

* **Refinement Rule 1** — drop ``v ∈ C`` with ``Delta(S ∪ {v}) > tau(sigma(B))``:
  no QC under ``B`` can contain ``v``.
* **Refinement Rule 2** — drop ``v ∈ C`` with
  ``delta(v, S ∪ C) < theta - tau(sigma(B))``: ``v`` cannot reach the degree a
  member of a large (>= theta) QC needs.

Shrinking ``C`` can only lower ``sigma(B)`` (hence ``tau(sigma(B))``), so the
condition is re-checked and the rules re-applied until the branch is pruned or
reaches a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Graph, iter_bits
from ..quasiclique.definitions import tau
from .branch import Branch, max_disconnections_in_partial
from .conditions import sigma


@dataclass(frozen=True)
class RefinementOutcome:
    """Result of progressively refining a branch.

    ``pruned`` is True when the branch (or one of its refinements) violates the
    necessary condition C1&2 and can be discarded.  Otherwise ``branch`` is the
    refined branch and ``tau_value`` the final disconnection budget
    ``tau(sigma(branch))``, which FastQC reuses for termination and branching.
    """

    pruned: bool
    branch: Branch
    tau_value: int
    rounds: int
    removed_by_rule1: int
    removed_by_rule2: int


def delta_of_partial_plus(graph: Graph, branch: Branch, vertex: int) -> int:
    """Return ``Delta(S ∪ {v})`` for a candidate vertex ``v`` (reference form)."""
    mask = branch.s_mask | (1 << vertex)
    return max((mask & ~graph.adjacency_mask(u)).bit_count() for u in iter_bits(mask))


def apply_rule1(graph: Graph, branch: Branch, tau_value: int) -> int:
    """Return the candidate mask after Refinement Rule 1.

    ``v`` is removed when ``Delta(S ∪ {v}) > tau_value``.  Using the
    self-counting convention, ``Delta(S ∪ {v})`` exceeds the budget exactly
    when ``delta_bar(v, S) + 1 > tau_value`` (v's own disconnections) or when
    some ``u ∈ S`` with ``delta_bar(u, S) >= tau_value`` is not adjacent to
    ``v`` (u's count grows by one).
    """
    s_mask = branch.s_mask
    # If Delta(S) already exceeds the budget, no candidate can repair it.
    if max_disconnections_in_partial(graph, branch) > tau_value:
        return 0
    # Vertices of S already at the budget: one more disconnection would overflow.
    critical_mask = 0
    for u in iter_bits(s_mask):
        if (s_mask & ~graph.adjacency_mask(u)).bit_count() >= tau_value:
            critical_mask |= 1 << u
    new_c_mask = branch.c_mask
    for v in iter_bits(branch.c_mask):
        adjacency = graph.adjacency_mask(v)
        own_disconnections = (s_mask & ~adjacency).bit_count() + 1  # +1 for v itself
        if own_disconnections > tau_value or (critical_mask & ~adjacency):
            new_c_mask &= ~(1 << v)
    return new_c_mask


def apply_rule2(graph: Graph, branch: Branch, tau_value: int, theta: int) -> int:
    """Return the candidate mask after Refinement Rule 2.

    ``v`` is removed when ``delta(v, S ∪ C) < theta - tau_value``.
    """
    required = theta - tau_value
    if required <= 0:
        return branch.c_mask
    union = branch.union_mask
    new_c_mask = branch.c_mask
    for v in iter_bits(branch.c_mask):
        if (graph.adjacency_mask(v) & union).bit_count() < required:
            new_c_mask &= ~(1 << v)
    return new_c_mask


def progressively_refine(graph: Graph, branch: Branch, gamma: float, theta: int,
                         max_rounds: int | None = None) -> RefinementOutcome:
    """Refine a branch and re-check the necessary condition until a fixpoint.

    Implements Algorithm 2, lines 3–7: the loop stops when the branch is
    pruned (condition C1&2 violated) or when no candidate can be removed.
    ``max_rounds`` optionally caps the number of iterations (None = no cap; the
    loop always terminates because ``C`` strictly shrinks every round).
    """
    removed_rule1 = 0
    removed_rule2 = 0
    rounds = 0
    current = branch
    while True:
        rounds += 1
        sigma_value = sigma(graph, current, gamma)
        tau_value = tau(sigma_value, gamma)
        if sigma_value < current.partial_size:
            return RefinementOutcome(True, current, tau_value, rounds,
                                     removed_rule1, removed_rule2)
        if max_disconnections_in_partial(graph, current) > tau_value:
            return RefinementOutcome(True, current, tau_value, rounds,
                                     removed_rule1, removed_rule2)
        after_rule1 = apply_rule1(graph, current, tau_value)
        removed_rule1 += (current.c_mask ^ after_rule1).bit_count()
        intermediate = current.with_candidates(after_rule1)
        after_rule2 = apply_rule2(graph, intermediate, tau_value, theta)
        removed_rule2 += (after_rule1 ^ after_rule2).bit_count()
        if after_rule2 == current.c_mask:
            return RefinementOutcome(False, current, tau_value, rounds,
                                     removed_rule1, removed_rule2)
        current = current.with_candidates(after_rule2)
        if max_rounds is not None and rounds >= max_rounds:
            sigma_value = sigma(graph, current, gamma)
            tau_value = tau(sigma_value, gamma)
            pruned = (sigma_value < current.partial_size
                      or max_disconnections_in_partial(graph, current) > tau_value)
            return RefinementOutcome(pruned, current, tau_value, rounds,
                                     removed_rule1, removed_rule2)
