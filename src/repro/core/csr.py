"""CSR (compressed sparse row) adjacency backend for the large-graph tier.

:class:`repro.graph.graph.Graph` keeps *dual* adjacency — a per-vertex
``set`` of neighbour indices plus a full-width Python-int bitmask — which is
O(n^2) bits and unusable at the paper's real dataset sizes (10^5-10^7
vertices).  :class:`CSRGraph` stores the same simple undirected graph in two
flat arrays instead:

* ``indptr`` — ``n + 1`` offsets, one per vertex, and
* ``indices`` — the concatenated neighbour lists, **sorted ascending** within
  each row,

for O(V + E) memory total.  It subclasses :class:`Graph` as a read-only
facade: every accessor the enumeration stack uses (``adjacency_mask``,
``adjacency_masks``, ``mask_of``, ``degree`` ...) is overridden to derive its
answer from the CSR rows on demand, and the adjacency bitmasks are
materialised lazily behind a bounded LRU so wide masks are only paid for the
vertices a query actually touches.  Mutations raise :class:`GraphError` —
the CSR layout cannot absorb edits in place; :meth:`CSRGraph.thaw` is the
documented escape hatch back to a mutable dict/bitmask graph.

The facade is exact: adjacency masks, neighbour orderings and therefore
every content-deterministic tie-break (degeneracy ordering, compact
subgraph local index assignment, pivot selection) are identical to what a
dict-backed :class:`Graph` of the same content produces, so CSR-backed
queries return answers identical to dict-backed ones.  The CSR-native
algorithm variants in this module (degeneracy/cores, restricted ordering,
connected components, 2-hop balls, compact extraction) mirror the reference
implementations' scan orders step for step to preserve that guarantee while
running in O(V + E) instead of O(n^2 / 64).

numpy, when importable, accelerates only the *construction* (sort + dedupe
of the symmetrised endpoint arrays); the stored arrays are always stdlib
``array('q')`` buffers so indexing yields plain Python ints everywhere and
the module works without numpy.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import OrderedDict
from collections.abc import Iterable, Iterator

from ..graph.graph import Graph, GraphError, VertexLabel

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via use_numpy=False tests
    _np = None

#: Bounded LRU capacity of the lazily materialised adjacency bitmasks.  At
#: 10^5 vertices one mask is ~12.5 KB, so the cache tops out around 13 MB —
#: enough to keep a whole shrink phase's ball resident without ever scaling
#: with |V| * |V|.
DEFAULT_MASK_CACHE = 1024


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def build_csr_arrays(vertex_count: int, endpoints_u, endpoints_v,
                     use_numpy: bool | None = None) -> tuple[array, array, int]:
    """Build ``(indptr, indices, edge_count)`` from parallel endpoint arrays.

    The endpoints describe undirected edges by vertex *index* (the caller
    interns labels); duplicates and symmetric repeats are deduplicated, rows
    come out sorted ascending.  Self-loops raise :class:`GraphError`.  With
    numpy available the symmetrise/sort/dedupe runs vectorised over int64
    keys ``u * n + v``; the stdlib fallback sorts a Python list of the same
    keys.  Either way the returned buffers are ``array('q')``.
    """
    n = vertex_count
    if use_numpy is None:
        use_numpy = _np is not None
    if use_numpy and _np is not None:
        u = _coerce_int64(endpoints_u)
        v = _coerce_int64(endpoints_v)
        if u.size and bool((u == v).any()):
            raise GraphError("self-loops are not allowed in CSR construction")
        keys = _np.unique(_np.concatenate((u * n + v, v * n + u)))
        rows = keys // n
        cols = keys - rows * n
        counts = _np.bincount(rows, minlength=n)
        indptr_np = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=indptr_np[1:])
        indptr = array("q")
        indptr.frombytes(indptr_np.tobytes())
        indices = array("q")
        indices.frombytes(cols.astype(_np.int64, copy=False).tobytes())
        return indptr, indices, len(indices) // 2
    keys: list[int] = []
    append = keys.append
    for a, b in zip(endpoints_u, endpoints_v):
        if a == b:
            raise GraphError(f"self-loops are not allowed in CSR construction "
                             f"(vertex index {a})")
        append(a * n + b)
        append(b * n + a)
    keys.sort()
    indptr = array("q", bytes(8 * (n + 1)))
    indices = array("q")
    previous = -1
    for key in keys:
        if key == previous:
            continue
        previous = key
        row = key // n
        indices.append(key - row * n)
        indptr[row + 1] += 1
    for i in range(n):
        indptr[i + 1] += indptr[i]
    return indptr, indices, len(indices) // 2


def _coerce_int64(buffer):
    """View an ``array('q')`` buffer (or any iterable) as a numpy int64 array."""
    if isinstance(buffer, array) and buffer.typecode == "q":
        if not len(buffer):
            return _np.empty(0, dtype=_np.int64)
        return _np.frombuffer(buffer, dtype=_np.int64)
    return _np.asarray(list(buffer), dtype=_np.int64)


# ----------------------------------------------------------------------
# Wide-mask helpers (byte-scans instead of O(n/64) low-bit extraction)
# ----------------------------------------------------------------------
def iter_mask_indices(mask: int) -> Iterator[int]:
    """Yield the set-bit indices of ``mask`` ascending, scanning byte-wise.

    Equivalent to :func:`repro.graph.graph.iter_bits`, but ``mask & -mask``
    on a w-bit int costs O(w/64) per extracted bit — O(k * w/64) total — while
    one ``to_bytes`` conversion plus a byte scan is O(w/8 + k).  On the wide
    masks of the large-graph tier that difference dominates.
    """
    if not mask:
        return
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    base = 0
    for byte in data:
        while byte:
            low = byte & -byte
            yield base + low.bit_length() - 1
            byte ^= low
        base += 8


class _LazyMaskTable:
    """Sequence facade over :meth:`CSRGraph.adjacency_mask`.

    Stands in for the dict graph's ``_adjacency_masks`` list so kernel code
    written against ``graph.adjacency_masks()[v]`` works unchanged; entries
    are built on demand and cached behind the graph's bounded LRU.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "CSRGraph") -> None:
        self._graph = graph

    def __len__(self) -> int:
        return self._graph.vertex_count

    def __getitem__(self, index: int) -> int:
        return self._graph.adjacency_mask(index)

    def __iter__(self) -> Iterator[int]:
        for index in range(self._graph.vertex_count):
            yield self._graph.adjacency_mask(index)


class _LazySetTable:
    """Sequence facade over :meth:`CSRGraph.adjacency_set` (fresh sets)."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "CSRGraph") -> None:
        self._graph = graph

    def __len__(self) -> int:
        return self._graph.vertex_count

    def __getitem__(self, index: int) -> set[int]:
        return self._graph.adjacency_set(index)

    def __iter__(self) -> Iterator[set[int]]:
        for index in range(self._graph.vertex_count):
            yield self._graph.adjacency_set(index)


# ----------------------------------------------------------------------
# The graph facade
# ----------------------------------------------------------------------
class CSRGraph(Graph):
    """A frozen :class:`Graph` whose adjacency lives in flat CSR arrays.

    Construct via :meth:`from_edge_stream` (interns labels first-seen, never
    materialises per-vertex containers), :meth:`Graph.from_csr`, or directly
    from prebuilt ``indptr`` / ``indices`` buffers (rows must be sorted
    ascending and symmetric — trusted, like
    :meth:`Graph.from_dense_adjacency`).

    The graph is immutable: all mutators raise :class:`GraphError`.  Use
    :meth:`thaw` to obtain a mutable dict/bitmask copy (O(n^2)-bit memory —
    intended for small extracted subgraphs, not 10^5-vertex inputs).
    """

    def __init__(self, labels: Iterable[VertexLabel], indptr, indices, *,
                 edge_count: int | None = None,
                 mask_cache: int = DEFAULT_MASK_CACHE) -> None:
        super().__init__()
        labels = list(labels)
        n = len(labels)
        if len(indptr) != n + 1:
            raise GraphError(f"indptr length {len(indptr)} does not match "
                             f"{n} labels (need n + 1 offsets)")
        if n and indptr[n] != len(indices):
            raise GraphError(f"indptr[-1] = {indptr[n]} does not match "
                             f"{len(indices)} neighbour entries")
        self._labels = labels
        self._index_of = {label: index for index, label in enumerate(labels)}
        if len(self._index_of) != n:
            raise GraphError("duplicate labels in CSR construction")
        self.indptr = indptr
        self.indices = indices
        self._edge_count = len(indices) // 2 if edge_count is None else edge_count
        self._version = 1
        self._mask_nbytes = (n + 7) // 8
        self._mask_cache: OrderedDict[int, int] = OrderedDict()
        self._mask_cache_capacity = mask_cache
        self._adjacency_sets = _LazySetTable(self)
        self._adjacency_masks = _LazyMaskTable(self)

    @classmethod
    def from_edge_stream(cls, pairs: Iterable[tuple[VertexLabel, VertexLabel]],
                         vertices: Iterable[VertexLabel] | None = None,
                         use_numpy: bool | None = None) -> "CSRGraph":
        """Build a CSR graph from a stream of ``(u, v)`` label pairs.

        Labels are interned to dense indices in first-seen order (explicit
        ``vertices`` first, matching ``Graph(edges, vertices=...)``), and the
        endpoints accumulate in flat ``array('q')`` buffers — at no point does
        a per-vertex set, list or bitmask exist, so peak memory is O(V + E).
        Duplicate pairs are deduplicated; self-loops raise.
        """
        labels: list[VertexLabel] = []
        index_of: dict[VertexLabel, int] = {}

        def intern(label: VertexLabel) -> int:
            index = index_of.get(label)
            if index is None:
                index = len(labels)
                index_of[label] = index
                labels.append(label)
            return index

        if vertices is not None:
            for label in vertices:
                intern(label)
        endpoints_u = array("q")
        endpoints_v = array("q")
        for a, b in pairs:
            if a == b:
                raise GraphError(f"self-loops are not allowed (vertex {a!r})")
            endpoints_u.append(intern(a))
            endpoints_v.append(intern(b))
        indptr, indices, edge_count = build_csr_arrays(
            len(labels), endpoints_u, endpoints_v, use_numpy=use_numpy)
        return cls(labels, indptr, indices, edge_count=edge_count)

    # ------------------------------------------------------------------
    # Frozen mutation surface
    # ------------------------------------------------------------------
    def _frozen(self, operation: str):
        raise GraphError(
            f"{operation}: CSR-backed graphs are immutable; call thaw() for a "
            f"mutable dict/bitmask copy")

    def add_vertex(self, label: VertexLabel) -> int:
        self._frozen("add_vertex")

    def add_edge(self, u: VertexLabel, v: VertexLabel) -> None:
        self._frozen("add_edge")

    def remove_edge(self, u: VertexLabel, v: VertexLabel) -> None:
        self._frozen("remove_edge")

    def remove_vertex(self, label: VertexLabel) -> None:
        self._frozen("remove_vertex")

    def thaw(self) -> Graph:
        """Return a mutable dict/bitmask :class:`Graph` with the same content.

        This re-enters the O(n^2)-bit representation — the documented path
        for callers that must mutate (e.g. handing a small ingested graph to
        :class:`repro.dynamic.DynamicEngine`), not for large-graph hot paths.
        """
        graph = Graph(vertices=self._labels)
        indptr, indices, labels = self.indptr, self.indices, self._labels
        for i in range(len(labels)):
            label = labels[i]
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if i < j:
                    graph.add_edge(label, labels[j])
        return graph

    # ------------------------------------------------------------------
    # Accessors (CSR-derived)
    # ------------------------------------------------------------------
    def adjacency_set(self, index: int) -> set[int]:
        """Fresh neighbour-index set built from the CSR row (do not mutate)."""
        if index < 0:
            index += len(self._labels)
        return set(self.indices[self.indptr[index]:self.indptr[index + 1]])

    def adjacency_mask(self, index: int) -> int:
        """Neighbour bitmask of a vertex, built lazily and LRU-cached."""
        if index < 0:
            index += len(self._labels)
        cache = self._mask_cache
        mask = cache.get(index)
        if mask is not None:
            cache.move_to_end(index)
            return mask
        buffer = bytearray(self._mask_nbytes)
        indices = self.indices
        for k in range(self.indptr[index], self.indptr[index + 1]):
            j = indices[k]
            buffer[j >> 3] |= 1 << (j & 7)
        mask = int.from_bytes(buffer, "little")
        cache[index] = mask
        if len(cache) > self._mask_cache_capacity:
            cache.popitem(last=False)
        return mask

    def adjacency_masks(self):
        """The lazy mask table (indexable like the dict graph's list)."""
        return self._adjacency_masks

    def neighbors(self, label: VertexLabel) -> frozenset[VertexLabel]:
        index = self.index_of(label)
        labels = self._labels
        return frozenset(labels[j] for j in
                         self.indices[self.indptr[index]:self.indptr[index + 1]])

    def degree(self, label: VertexLabel) -> int:
        index = self.index_of(label)
        return self.indptr[index + 1] - self.indptr[index]

    def degree_sequence(self) -> list[int]:
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self._labels))]

    def max_degree(self) -> int:
        if not self._labels:
            return 0
        indptr = self.indptr
        return max(indptr[i + 1] - indptr[i] for i in range(len(self._labels)))

    def edges(self) -> list[tuple[VertexLabel, VertexLabel]]:
        result = []
        indptr, indices, labels = self.indptr, self.indices, self._labels
        for i in range(len(labels)):
            label = labels[i]
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if j > i:
                    result.append((label, labels[j]))
        return result

    def has_edge(self, u: VertexLabel, v: VertexLabel) -> bool:
        i = self._index_of.get(u)
        j = self._index_of.get(v)
        if i is None or j is None:
            return False
        lo, hi = self.indptr[i], self.indptr[i + 1]
        k = bisect_left(self.indices, j, lo, hi)
        return k < hi and self.indices[k] == j

    def mask_of(self, labels: Iterable[VertexLabel]) -> int:
        """Bitmask of a label collection via one byte buffer (O(n/8 + k))."""
        buffer = bytearray(self._mask_nbytes)
        index_of = self._index_of
        for label in labels:
            try:
                i = index_of[label]
            except KeyError:
                raise GraphError(f"unknown vertex {label!r}") from None
            buffer[i >> 3] |= 1 << (i & 7)
        return int.from_bytes(buffer, "little")

    def labels_of_mask(self, mask: int) -> frozenset[VertexLabel]:
        labels = self._labels
        return frozenset(labels[i] for i in iter_mask_indices(mask))

    def copy(self) -> "CSRGraph":
        """Cheap copy sharing the immutable CSR buffers."""
        return CSRGraph(self._labels, self.indptr, self.indices,
                        edge_count=self._edge_count,
                        mask_cache=self._mask_cache_capacity)

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.vertex_count}, |E|={self.edge_count})"

    # ------------------------------------------------------------------
    # Batched restricted counting (the kernel's one-hop shrink hook)
    # ------------------------------------------------------------------
    def restricted_counts(self, members_mask: int,
                          target_mask: int | None = None) -> dict[int, int]:
        """Return ``{v: |Γ(v) ∩ target|}`` for every member of ``members_mask``.

        One byte-buffer membership test per neighbour entry — O(n/8 + Σ
        deg(member)) small-int operations, with no full-width mask involved.
        :class:`repro.core.kernel.ShrinkLedgers` uses this to batch the
        one-hop degree pass, replacing one O(n/64) popcount (plus an O(deg +
        n/8) lazy mask build) per scanned member.  ``target_mask`` defaults
        to ``members_mask`` itself.
        """
        target = members_mask if target_mask is None else target_mask
        tbytes = target.to_bytes(self._mask_nbytes, "little")
        indptr, indices = self.indptr, self.indices
        counts: dict[int, int] = {}
        for v in iter_mask_indices(members_mask):
            total = 0
            for k in range(indptr[v], indptr[v + 1]):
                j = indices[k]
                total += (tbytes[j >> 3] >> (j & 7)) & 1
            counts[v] = total
        return counts


# ----------------------------------------------------------------------
# CSR-native algorithm variants (dispatched from repro.graph)
# ----------------------------------------------------------------------
# Each of these mirrors its mask-based reference implementation's scan order
# exactly — bucket initialisation ascending by index, LIFO pops with the
# stale-entry skip, neighbour walks ascending — so tie-breaks, and therefore
# the emitted candidate sets of the whole enumeration stack, are identical.

def csr_degeneracy_order_and_cores(graph: CSRGraph) -> tuple[list[int], list[int]]:
    """Index-space ``(order, core_numbers)``; the Batagelj–Zaversnik buckets
    of ``_degeneracy_order_and_cores`` run over CSR rows instead of bitmasks."""
    n = graph.vertex_count
    if n == 0:
        return [], []
    indptr, indices = graph.indptr, graph.indices
    degrees = [indptr[i + 1] - indptr[i] for i in range(n)]
    max_degree = max(degrees)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for index, degree in enumerate(degrees):
        buckets[degree].append(index)
    position_removed = [False] * n
    current_degree = degrees[:]
    order_indices: list[int] = []
    core_of_index = [0] * n
    current_core = 0
    pointer = 0
    removed = 0
    while removed < n:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        vertex = buckets[pointer].pop()
        if position_removed[vertex] or current_degree[vertex] != pointer:
            continue
        position_removed[vertex] = True
        removed += 1
        current_core = max(current_core, pointer)
        core_of_index[vertex] = current_core
        order_indices.append(vertex)
        for k in range(indptr[vertex], indptr[vertex + 1]):
            neighbour = indices[k]
            if position_removed[neighbour]:
                continue
            current_degree[neighbour] -= 1
            new_degree = current_degree[neighbour]
            buckets[new_degree].append(neighbour)
            if new_degree < pointer:
                pointer = new_degree
    return order_indices, core_of_index


def csr_restricted_degeneracy_order(graph: CSRGraph, mask: int) -> list[int]:
    """Degeneracy ordering of ``G[mask]`` as global indices, CSR-native.

    Produces exactly the sequence ``degeneracy_ordering(compact_subgraph(
    graph, mask))`` would (mapped back to global indices): compact local
    indices are monotone in global indices, so ascending-global scans here
    equal ascending-local scans there.
    """
    members = list(iter_mask_indices(mask))
    if not members:
        return []
    n = graph.vertex_count
    indptr, indices = graph.indptr, graph.indices
    mbytes = mask.to_bytes((n + 7) // 8, "little")
    degrees = [0] * n
    for v in members:
        total = 0
        for k in range(indptr[v], indptr[v + 1]):
            j = indices[k]
            total += (mbytes[j >> 3] >> (j & 7)) & 1
        degrees[v] = total
    max_degree = max(degrees[v] for v in members)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for v in members:
        buckets[degrees[v]].append(v)
    position_removed = [False] * n
    order: list[int] = []
    pointer = 0
    remaining = len(members)
    while remaining:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        vertex = buckets[pointer].pop()
        if position_removed[vertex] or degrees[vertex] != pointer:
            continue
        position_removed[vertex] = True
        remaining -= 1
        order.append(vertex)
        for k in range(indptr[vertex], indptr[vertex + 1]):
            neighbour = indices[k]
            if not (mbytes[neighbour >> 3] >> (neighbour & 7)) & 1:
                continue
            if position_removed[neighbour]:
                continue
            degrees[neighbour] -= 1
            new_degree = degrees[neighbour]
            buckets[new_degree].append(neighbour)
            if new_degree < pointer:
                pointer = new_degree
    return order


def csr_connected_components(graph: CSRGraph,
                             within_mask: int | None = None
                             ) -> list[frozenset[VertexLabel]]:
    """Connected components via CSR BFS, ordered by smallest member index
    (the same order the mask-based BFS produces)."""
    n = graph.vertex_count
    indptr, indices, labels = graph.indptr, graph.indices, graph._labels
    allowed = (within_mask.to_bytes((n + 7) // 8, "little")
               if within_mask is not None else None)
    seen = bytearray(n)
    components: list[frozenset[VertexLabel]] = []
    for start in range(n):
        if seen[start]:
            continue
        if allowed is not None and not (allowed[start >> 3] >> (start & 7)) & 1:
            continue
        seen[start] = 1
        stack = [start]
        component = [start]
        while stack:
            vertex = stack.pop()
            for k in range(indptr[vertex], indptr[vertex + 1]):
                j = indices[k]
                if seen[j]:
                    continue
                if allowed is not None and not (allowed[j >> 3] >> (j & 7)) & 1:
                    continue
                seen[j] = 1
                component.append(j)
                stack.append(j)
        components.append(frozenset(labels[i] for i in component))
    return components


def csr_is_connected(graph: CSRGraph, allowed_mask: int | None = None) -> bool:
    """Connectivity of ``G`` (or ``G[allowed_mask]``) via one CSR BFS."""
    n = graph.vertex_count
    if n == 0:
        return True
    indptr, indices = graph.indptr, graph.indices
    if allowed_mask is None:
        start = 0
        allowed = None
        total = n
    else:
        if allowed_mask == 0:
            return True
        allowed = allowed_mask.to_bytes((n + 7) // 8, "little")
        start = next(iter_mask_indices(allowed_mask))
        total = allowed_mask.bit_count()
    seen = bytearray(n)
    seen[start] = 1
    reached = 1
    stack = [start]
    while stack:
        vertex = stack.pop()
        for k in range(indptr[vertex], indptr[vertex + 1]):
            j = indices[k]
            if seen[j]:
                continue
            if allowed is not None and not (allowed[j >> 3] >> (j & 7)) & 1:
                continue
            seen[j] = 1
            reached += 1
            stack.append(j)
    return reached == total


def csr_two_hop_mask(graph: CSRGraph, center_index: int, allowed_mask: int) -> int:
    """``two_hop_mask`` over CSR rows: O(Σ deg(allowed 1-hop) + n/8)."""
    nbytes = graph._mask_nbytes
    allowed = allowed_mask.to_bytes(nbytes, "little")
    reach = bytearray(nbytes)
    indptr, indices = graph.indptr, graph.indices
    one_hop = []
    for k in range(indptr[center_index], indptr[center_index + 1]):
        j = indices[k]
        if (allowed[j >> 3] >> (j & 7)) & 1:
            one_hop.append(j)
            reach[j >> 3] |= 1 << (j & 7)
    for w in one_hop:
        for k in range(indptr[w], indptr[w + 1]):
            x = indices[k]
            if (allowed[x >> 3] >> (x & 7)) & 1:
                reach[x >> 3] |= 1 << (x & 7)
    if (allowed[center_index >> 3] >> (center_index & 7)) & 1:
        reach[center_index >> 3] |= 1 << (center_index & 7)
    return int.from_bytes(reach, "little")


def csr_compact_subgraph(graph: CSRGraph, mask: int) -> Graph:
    """``compact_subgraph`` over CSR rows — same labels, same local masks.

    The extracted subproblem is a plain dict/bitmask :class:`Graph` on
    purpose: subproblems are small (two-hop balls after shrinking), which is
    exactly where the bitmask kernel's branch inner loops want to run.
    """
    members = list(iter_mask_indices(mask))
    local_of = {global_index: local for local, global_index in enumerate(members)}
    mbytes = mask.to_bytes(graph._mask_nbytes, "little")
    indptr, indices, labels = graph.indptr, graph.indices, graph._labels
    local_masks = []
    for global_index in members:
        local_mask = 0
        for k in range(indptr[global_index], indptr[global_index + 1]):
            j = indices[k]
            if (mbytes[j >> 3] >> (j & 7)) & 1:
                local_mask |= 1 << local_of[j]
        local_masks.append(local_mask)
    return Graph.from_dense_adjacency(
        [labels[global_index] for global_index in members], local_masks)
