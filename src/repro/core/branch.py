"""Branch representation for the branch-and-bound algorithms.

A branch ``B = (S, C, D)`` (Section 3) represents the sub-space of vertex sets
``H`` with ``S ⊆ H ⊆ S ∪ C`` and ``H ∩ D = ∅``:

* **S** — the partial set: vertices included in every set of the branch,
* **C** — the candidate set: vertices that may still be added, and
* **D** — the exclusion set: vertices excluded from every set of the branch.

Branches are stored as bitmasks over the owning graph's vertex indices, which
keeps the per-branch bookkeeping (degrees, disconnections, set algebra) cheap.
Branch objects are immutable; refinement and branching create new objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Graph, iter_bits


@dataclass(frozen=True)
class Branch:
    """An immutable ``(S, C, D)`` branch over a graph's vertex indices."""

    s_mask: int
    c_mask: int
    d_mask: int

    def __post_init__(self) -> None:
        if self.s_mask & self.c_mask:
            raise ValueError("S and C must be disjoint")
        if (self.s_mask | self.c_mask) & self.d_mask:
            raise ValueError("D must be disjoint from S and C")

    # ------------------------------------------------------------------
    # Sizes and membership
    # ------------------------------------------------------------------
    @property
    def union_mask(self) -> int:
        """The bitmask of ``S ∪ C``."""
        return self.s_mask | self.c_mask

    @property
    def partial_size(self) -> int:
        """``|S|``."""
        return self.s_mask.bit_count()

    @property
    def candidate_size(self) -> int:
        """``|C|``."""
        return self.c_mask.bit_count()

    @property
    def union_size(self) -> int:
        """``|S ∪ C|``."""
        return self.union_mask.bit_count()

    def partial_vertices(self) -> list[int]:
        """Indices of S in increasing order."""
        return list(iter_bits(self.s_mask))

    def candidate_vertices(self) -> list[int]:
        """Indices of C in increasing order."""
        return list(iter_bits(self.c_mask))

    def excluded_vertices(self) -> list[int]:
        """Indices of D in increasing order."""
        return list(iter_bits(self.d_mask))

    # ------------------------------------------------------------------
    # Derived branches
    # ------------------------------------------------------------------
    def with_candidates(self, new_c_mask: int) -> "Branch":
        """Return a copy with the candidate set replaced (refinement step)."""
        return Branch(self.s_mask, new_c_mask, self.d_mask)

    def include(self, vertex_mask: int) -> "Branch":
        """Return the branch obtained by moving ``vertex_mask ⊆ C`` into S."""
        if vertex_mask & ~self.c_mask:
            raise ValueError("can only include candidate vertices")
        return Branch(self.s_mask | vertex_mask, self.c_mask & ~vertex_mask, self.d_mask)

    def exclude(self, vertex_mask: int) -> "Branch":
        """Return the branch obtained by moving ``vertex_mask ⊆ C`` into D."""
        if vertex_mask & ~self.c_mask:
            raise ValueError("can only exclude candidate vertices")
        return Branch(self.s_mask, self.c_mask & ~vertex_mask, self.d_mask | vertex_mask)

    def covers(self, subset_mask: int) -> bool:
        """Return True iff the vertex set ``subset_mask`` lies inside this branch."""
        if self.s_mask & ~subset_mask:
            return False
        if subset_mask & ~self.union_mask:
            return False
        return not (subset_mask & self.d_mask)

    @classmethod
    def initial(cls, graph: Graph) -> "Branch":
        """Return the universal branch ``(∅, V, ∅)``."""
        return cls(0, graph.full_mask(), 0)

    @classmethod
    def from_labels(cls, graph: Graph, partial=(), candidates=None, excluded=()) -> "Branch":
        """Build a branch from label collections (candidates default to the rest)."""
        s_mask = graph.mask_of(partial)
        d_mask = graph.mask_of(excluded)
        if candidates is None:
            c_mask = graph.full_mask() & ~s_mask & ~d_mask
        else:
            c_mask = graph.mask_of(candidates) & ~s_mask
        return cls(s_mask, c_mask, d_mask)


# ----------------------------------------------------------------------
# Degree / disconnection bookkeeping over branches
# ----------------------------------------------------------------------
def degree_in_union(graph: Graph, vertex: int, branch: Branch) -> int:
    """Return ``delta(v, S ∪ C)``."""
    return (graph.adjacency_mask(vertex) & branch.union_mask).bit_count()


def degree_in_partial(graph: Graph, vertex: int, branch: Branch) -> int:
    """Return ``delta(v, S)``."""
    return (graph.adjacency_mask(vertex) & branch.s_mask).bit_count()


def disconnections_in_partial(graph: Graph, vertex: int, branch: Branch) -> int:
    """Return ``delta_bar(v, S)`` (counts ``v`` itself when ``v ∈ S``)."""
    return (branch.s_mask & ~graph.adjacency_mask(vertex)).bit_count()


def disconnections_in_union(graph: Graph, vertex: int, branch: Branch) -> int:
    """Return ``delta_bar(v, S ∪ C)`` (counts ``v`` itself when it is in the union)."""
    return (branch.union_mask & ~graph.adjacency_mask(vertex)).bit_count()


def max_disconnections_in_partial(graph: Graph, branch: Branch) -> int:
    """Return ``Delta(S)``; 0 when S is empty."""
    if branch.s_mask == 0:
        return 0
    return max((branch.s_mask & ~graph.adjacency_mask(v)).bit_count()
               for v in iter_bits(branch.s_mask))

def max_disconnections_in_union(graph: Graph, branch: Branch) -> int:
    """Return ``Delta(S ∪ C)``; 0 when the union is empty."""
    union = branch.union_mask
    if union == 0:
        return 0
    return max((union & ~graph.adjacency_mask(v)).bit_count() for v in iter_bits(union))


def min_partial_degree_in_union(graph: Graph, branch: Branch) -> int:
    """Return ``d_min(B) = min_{v in S} delta(v, S ∪ C)`` (Equation 11); 0 when S is empty."""
    if branch.s_mask == 0:
        return 0
    union = branch.union_mask
    return min((graph.adjacency_mask(v) & union).bit_count() for v in iter_bits(branch.s_mask))
