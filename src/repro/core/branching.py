"""Branching methods: SE, Sym-SE and Hybrid-SE (Sections 3, 4.3 and 4.4).

All three methods partition the search space of a branch ``B = (S, C, D)``
over an *ordering* ``<v_1, ..., v_|C|>`` of the candidate set:

* **SE branching** (Equation 1, used by Quick+): branch ``i`` includes ``v_i``
  and excludes ``v_1..v_{i-1}``.
* **Sym-SE branching** (Equation 13): branch ``i`` excludes ``v_i`` and
  includes ``v_1..v_{i-1}``; there are ``|C| + 1`` branches, the last one
  including all of ``C``.
* **Hybrid-SE branching** (Equation 18): applicable when the pivot lies in
  ``C`` and has no disconnection in ``S``; it combines the SE branches that
  exclude the pivot with the Sym-SE branches that include it, and prunes the
  rest using Lemma 3 (maximality) and the necessary condition respectively.

The ordering and the number of retained branches are driven by a *pivot*
vertex with more than ``tau(sigma(B))`` disconnections in ``S ∪ C``
(Equations 14–16).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Graph, iter_bits
from .branch import Branch, disconnections_in_partial, disconnections_in_union


@dataclass(frozen=True)
class PivotInfo:
    """The pivot vertex and the quantities ``a`` and ``b`` of Equation 14."""

    vertex: int
    in_partial: bool                 # pivot drawn from S (Case 1) or C (Case 2)
    disconnections_in_partial: int   # delta_bar(pivot, S)
    disconnections_in_candidates: int  # b = delta_bar(pivot, C)
    disconnections_in_union: int     # delta_bar(pivot, S ∪ C)
    budget: int                      # tau(sigma(B))

    @property
    def a(self) -> int:
        """``a = tau(sigma(B)) - delta_bar(pivot, S)`` (Equation 14)."""
        return self.budget - self.disconnections_in_partial

    @property
    def b(self) -> int:
        """``b = delta_bar(pivot, C)`` (Equation 14)."""
        return self.disconnections_in_candidates


def select_pivot(graph: Graph, branch: Branch, tau_value: int) -> PivotInfo | None:
    """Select the pivot: the vertex of ``S ∪ C`` with the most disconnections.

    Only vertices with strictly more than ``tau_value`` disconnections within
    ``S ∪ C`` qualify; ``None`` is returned when no vertex qualifies, i.e. when
    ``Delta(S ∪ C) <= tau_value`` and the branch terminates via condition T1.
    """
    best_vertex = None
    best_disconnections = tau_value
    union = branch.union_mask
    for vertex in iter_bits(union):
        disconnections = (union & ~graph.adjacency_mask(vertex)).bit_count()
        if disconnections > best_disconnections:
            best_disconnections = disconnections
            best_vertex = vertex
    if best_vertex is None:
        return None
    return PivotInfo(
        vertex=best_vertex,
        in_partial=bool(branch.s_mask >> best_vertex & 1),
        disconnections_in_partial=disconnections_in_partial(graph, best_vertex, branch),
        disconnections_in_candidates=(branch.c_mask & ~graph.adjacency_mask(best_vertex)).bit_count(),
        disconnections_in_union=disconnections_in_union(graph, best_vertex, branch),
        budget=tau_value,
    )


def pivot_ordering_masks(adjacency: int, c_mask: int, pivot: PivotInfo) -> list[int]:
    """Candidate ordering from the pivot's adjacency and candidate bitmasks.

    The single source of the ordering rule, shared by the mask-based
    :func:`pivot_ordering` and the ledger kernel's
    :func:`repro.core.kernel.pivot_ordering_state` — the two paths must order
    identically for branch-for-branch parity.
    """
    bit_length = int.bit_length
    non_neighbours = []
    remaining = c_mask & ~adjacency
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        non_neighbours.append(bit_length(low) - 1)
    neighbours = []
    remaining = c_mask & adjacency
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        neighbours.append(bit_length(low) - 1)
    if pivot.in_partial:
        return non_neighbours + neighbours
    front = [pivot.vertex] + [v for v in non_neighbours if v != pivot.vertex]
    return front + neighbours


def pivot_ordering(graph: Graph, branch: Branch, pivot: PivotInfo) -> list[int]:
    """Return the candidate ordering induced by the pivot (Equations 15 and 16).

    Case 1 (pivot in S): the non-neighbours of the pivot within ``C`` come
    first, then its neighbours.  Case 2 (pivot in C): the pivot itself comes
    first, then its other non-neighbours within ``C``, then its neighbours.
    Ties inside each block are broken by vertex index for determinism.
    """
    return pivot_ordering_masks(graph.adjacency_mask(pivot.vertex),
                                branch.c_mask, pivot)


def se_branches(branch: Branch, ordering: list[int], keep: int | None = None) -> list[Branch]:
    """Create SE branches over ``ordering`` (Equation 1).

    Branch ``i`` (1-based) includes ``v_i`` and excludes ``v_1..v_{i-1}``.
    ``keep`` optionally limits the result to the first ``keep`` branches.
    """
    limit = len(ordering) if keep is None else min(keep, len(ordering))
    branches = []
    preceding_mask = 0
    for position in range(limit):
        vertex_bit = 1 << ordering[position]
        branches.append(Branch(
            branch.s_mask | vertex_bit,
            branch.c_mask & ~(preceding_mask | vertex_bit),
            branch.d_mask | preceding_mask,
        ))
        preceding_mask |= vertex_bit
    return branches


def sym_se_branches(branch: Branch, ordering: list[int], keep: int | None = None) -> list[Branch]:
    """Create Sym-SE branches over ``ordering`` (Equation 13).

    Branch ``i`` (1-based, ``1 <= i <= |C| + 1``) includes ``v_1..v_{i-1}`` and
    excludes ``v_i`` (the ``|C|+1``-th branch excludes a fictitious vertex,
    i.e. it includes the whole candidate set).  ``keep`` limits the result to
    the first ``keep`` branches, which is how the necessary-condition pruning
    of Section 4.3 is realised.
    """
    total = len(ordering) + 1
    limit = total if keep is None else min(keep, total)
    branches = []
    included_mask = 0
    for position in range(limit):
        if position < len(ordering):
            vertex_bit = 1 << ordering[position]
            branches.append(Branch(
                branch.s_mask | included_mask,
                branch.c_mask & ~(included_mask | vertex_bit),
                branch.d_mask | vertex_bit,
            ))
            included_mask |= vertex_bit
        else:
            branches.append(Branch(
                branch.s_mask | branch.c_mask,
                0,
                branch.d_mask,
            ))
    return branches


def hybrid_se_applicable(pivot: PivotInfo) -> bool:
    """Return True when Hybrid-SE branching may be used (remark in Section 4.4).

    Requirements: the pivot is a candidate vertex, it has no disconnection
    within ``S`` (``delta_bar(pivot, S) = 0``), and either ``b = a + 1`` or the
    disconnection budget is 1 (the extra constraints needed by the complexity
    analysis of Theorem 1).
    """
    if pivot.in_partial or pivot.disconnections_in_partial != 0:
        return False
    return pivot.b == pivot.a + 1 or pivot.budget == 1


def hybrid_se_branch_pair(branch: Branch, ordering: list[int], pivot: PivotInfo
                          ) -> tuple[list[Branch], list[Branch]]:
    """Create the Hybrid-SE branches (Equation 18).

    Returns ``(excluding, including)`` where ``excluding`` are the SE branches
    ``~B_2 .. ~B_b`` (they exclude the pivot; the later SE branches are pruned
    by Lemma 3) and ``including`` are the Sym-SE branches ``̈B_2 .. ̈B_{a+1}``
    (they include the pivot; the later Sym-SE branches violate the necessary
    condition).
    """
    excluding = se_branches(branch, ordering, keep=pivot.b)[1:]
    including = sym_se_branches(branch, ordering, keep=pivot.a + 1)[1:]
    return excluding, including


def generate_branches(graph: Graph, branch: Branch, pivot: PivotInfo,
                      method: str) -> list[Branch]:
    """Generate the child branches of ``branch`` under the requested method.

    ``method`` is one of:

    * ``"hybrid"`` — Hybrid-SE when applicable, otherwise Sym-SE (FastQC default),
    * ``"sym-se"`` — always Sym-SE branching,
    * ``"se"`` — plain SE branching over the pivot ordering with no
      pivot-based pruning of sub-branches (the "SE" ablation of Figure 11).
    """
    ordering = pivot_ordering(graph, branch, pivot)
    if method == "se":
        return se_branches(branch, ordering)
    # Branch 1 of Sym-SE never needs a justification to be kept, so the keep
    # count is clamped to at least one even if a caller skipped refinement and
    # the pivot's `a` happens to be negative.
    sym_keep = max(1, pivot.a + 1)
    if method == "sym-se":
        return sym_se_branches(branch, ordering, keep=sym_keep)
    if method == "hybrid":
        if hybrid_se_applicable(pivot):
            excluding, including = hybrid_se_branch_pair(branch, ordering, pivot)
            return excluding + including
        return sym_se_branches(branch, ordering, keep=sym_keep)
    raise ValueError(f"unknown branching method {method!r}")


BRANCHING_METHODS = ("hybrid", "sym-se", "se")
