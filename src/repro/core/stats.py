"""Search statistics shared by all branch-and-bound algorithms.

Branch counts are machine- and language-independent, so the experiment harness
reports them next to wall-clock times: they are the quantity the paper's
theoretical analysis actually bounds.  The ledger counters expose how much
incremental bookkeeping the :mod:`repro.core.kernel` branch-state kernel did
(each vertex move between S/C/X touches only the moved vertex's neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass
class SizeHistogram:
    """Bounded summary of a stream of sizes (count / total / max + log2 buckets).

    Replaces the old unbounded per-subproblem size list: a long-lived engine
    serving millions of queries must not grow a Python list without bound, so
    only O(log(max size)) bucket counters are kept.  Bucket keys are the
    power-of-two floor of the recorded size (0 sizes land in bucket 0).
    """

    count: int = 0
    total: int = 0
    max: int = 0
    buckets: dict[int, int] = field(default_factory=dict)

    def record(self, size: int) -> None:
        """Record one size observation in O(1) space."""
        self.count += 1
        self.total += size
        if size > self.max:
            self.max = size
        key = 1 << (size.bit_length() - 1) if size > 0 else 0
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def average(self) -> float:
        """Mean recorded size (0.0 when nothing was recorded)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "SizeHistogram") -> None:
        """Accumulate another histogram into this one."""
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        for key, value in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + value

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0


@dataclass
class SearchStatistics:
    """Counters accumulated during one enumeration run."""

    branches_explored: int = 0
    branches_pruned_by_condition: int = 0
    branches_pruned_by_type2: int = 0
    branches_terminated_t1: int = 0
    branches_terminated_t2: int = 0
    candidates_removed_by_refinement: int = 0
    candidates_removed_by_type1: int = 0
    outputs: int = 0
    outputs_suppressed_by_maximality: int = 0
    subproblems: int = 0
    #: Ledger kernel bookkeeping: vertex moves between S/C/X and the per-move
    #: neighbour ledger entries touched (0 for the mask-based reference path).
    ledger_moves: int = 0
    ledger_updates: int = 0
    #: Kernelized subproblem shrinking (DCFastQC ledger path only): pruning
    #: rounds run, vertices dropped per rule, and the neighbour ledger entries
    #: decremented while doing so (0 for the mask-based reference shrinking).
    shrink_rounds: int = 0
    shrink_removed_one_hop: int = 0
    shrink_removed_two_hop: int = 0
    shrink_ledger_updates: int = 0
    #: Branch-parallel runs only: subtrees stolen between workers and the
    #: summed worker busy wall-clock (both 0 for sequential/shard runs).
    steals: int = 0
    parallel_busy_seconds: float = 0.0
    subproblem_sizes: SizeHistogram = field(default_factory=SizeHistogram)
    #: Branches explored per DC subproblem.  Unlike the ball-size histogram
    #: this measures *work directly*, so the planner prefers it for the
    #: shard/branch skew decision once a run has recorded it.  Branch-parallel
    #: runs leave it empty: stolen subtrees cross workers, so per-subproblem
    #: attribution is only possible on sequential/shard/inline runs.
    subproblem_branches: SizeHistogram = field(default_factory=SizeHistogram)

    def as_dict(self) -> dict:
        data = asdict(self)
        data["max_subproblem_size"] = self.subproblem_sizes.max
        data["avg_subproblem_size"] = self.subproblem_sizes.average
        # Process high-water mark at snapshot time (None where the platform
        # offers no getrusage).  Lazy import: obs depends on this module.
        from ..obs.process import peak_rss_bytes
        data["peak_rss_bytes"] = peak_rss_bytes()
        return data

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate another run's counters into this one (used by the DC driver)."""
        self.branches_explored += other.branches_explored
        self.branches_pruned_by_condition += other.branches_pruned_by_condition
        self.branches_pruned_by_type2 += other.branches_pruned_by_type2
        self.branches_terminated_t1 += other.branches_terminated_t1
        self.branches_terminated_t2 += other.branches_terminated_t2
        self.candidates_removed_by_refinement += other.candidates_removed_by_refinement
        self.candidates_removed_by_type1 += other.candidates_removed_by_type1
        self.outputs += other.outputs
        self.outputs_suppressed_by_maximality += other.outputs_suppressed_by_maximality
        self.subproblems += other.subproblems
        self.ledger_moves += other.ledger_moves
        self.ledger_updates += other.ledger_updates
        self.shrink_rounds += other.shrink_rounds
        self.shrink_removed_one_hop += other.shrink_removed_one_hop
        self.shrink_removed_two_hop += other.shrink_removed_two_hop
        self.shrink_ledger_updates += other.shrink_ledger_updates
        self.steals += other.steals
        self.parallel_busy_seconds += other.parallel_busy_seconds
        self.subproblem_sizes.merge(other.subproblem_sizes)
        self.subproblem_branches.merge(other.subproblem_branches)
