"""Search statistics shared by all branch-and-bound algorithms.

Branch counts are machine- and language-independent, so the experiment harness
reports them next to wall-clock times: they are the quantity the paper's
theoretical analysis actually bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass
class SearchStatistics:
    """Counters accumulated during one enumeration run."""

    branches_explored: int = 0
    branches_pruned_by_condition: int = 0
    branches_pruned_by_type2: int = 0
    branches_terminated_t1: int = 0
    branches_terminated_t2: int = 0
    candidates_removed_by_refinement: int = 0
    candidates_removed_by_type1: int = 0
    outputs: int = 0
    outputs_suppressed_by_maximality: int = 0
    subproblems: int = 0
    subproblem_sizes: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        data = asdict(self)
        data["max_subproblem_size"] = max(self.subproblem_sizes, default=0)
        data["avg_subproblem_size"] = (
            sum(self.subproblem_sizes) / len(self.subproblem_sizes)
            if self.subproblem_sizes else 0.0)
        return data

    def merge(self, other: "SearchStatistics") -> None:
        """Accumulate another run's counters into this one (used by the DC driver)."""
        self.branches_explored += other.branches_explored
        self.branches_pruned_by_condition += other.branches_pruned_by_condition
        self.branches_pruned_by_type2 += other.branches_pruned_by_type2
        self.branches_terminated_t1 += other.branches_terminated_t1
        self.branches_terminated_t2 += other.branches_terminated_t2
        self.candidates_removed_by_refinement += other.candidates_removed_by_refinement
        self.candidates_removed_by_type1 += other.candidates_removed_by_type1
        self.outputs += other.outputs
        self.outputs_suppressed_by_maximality += other.outputs_suppressed_by_maximality
        self.subproblems += other.subproblems
        self.subproblem_sizes.extend(other.subproblem_sizes)
