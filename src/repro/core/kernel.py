"""Incremental branch-state kernel: flat degree ledgers for the enumeration stack.

The reference implementations (:mod:`repro.core.branch`,
:mod:`repro.core.refinement`, :mod:`repro.core.branching`,
:mod:`repro.baselines.pruning_rules`) recompute every branch quantity —
``sigma(B)``, ``Delta(S)``, ``Delta(S ∪ C)``, the refinement and Type I/II
pruning rules, the T1/T2 termination conditions and the pivot scores — from
scratch with per-vertex popcounts over full-graph-width bitmasks, even though
a child branch differs from its parent by exactly one vertex.

This module replaces those popcounts with flat-buffer ledgers, shared by all
three branch-and-bound algorithms (FastQC, DCFastQC and Quick+):

* :class:`BranchState` carries per-vertex ledgers ``deg_in_s[v] =
  delta(v, S)`` and ``deg_in_union[v] = delta(v, S ∪ C)``, updated in
  ``O(deg(v) ∩ union)`` per single-vertex move and *adaptively* for mass
  removals (:meth:`BranchState.remove_mask` recomputes the few survivors when
  a pruning pass guts the candidate set).  Every derived quantity falls out
  of ``delta_bar(v, S) = |S| - deg_in_s[v]`` and ``delta_bar(v, S ∪ C) =
  |S ∪ C| - deg_in_union[v]``, so C1&2, Refinement Rules 1–2, Quick+'s
  Type I/II rules, T1/T2 and pivot selection become plain ``O(|S|)`` /
  ``O(|C|)`` flat-array scans with integer threshold arithmetic.
* :class:`ShrinkLedgers` kernelizes DCFastQC's subproblem shrinking: fused
  store-free first passes, a bit-sliced bulk two-hop rule, and lazily
  reconciled degree/common-neighbour ledgers for the later rounds.
* The ledger buffers come from a pluggable backend (``REPRO_KERNEL_BACKEND``:
  ``auto`` — the default, picking ``array('i')`` for wide states and plain
  lists for compact subproblem states — or a forced ``array`` / ``numpy`` /
  ``list``).

The functions mirror their reference counterparts one-to-one and visit the
exact same branch tree (same refinement fixpoints, same pivot tie-breaks,
same child ordering), so the kernelized enumerators are differentially
testable against the mask-based implementations branch for branch.

The module also provides :func:`depth_first_enumerate`, the explicit
work-stack driver shared by FastQC and Quick+: it performs the same
post-order traversal as the old recursion (children first, then the
``G[S]`` fallback output decision) without consuming Python stack frames,
which removes the ``sys.setrecursionlimit`` manipulation from the
enumeration entry points.
"""

from __future__ import annotations

import os
import warnings
from array import array
from collections.abc import Callable, Iterable

from ..graph.graph import Graph, iter_bits
from ..quasiclique.definitions import gamma_fraction
from .branch import Branch
from .branching import PivotInfo, hybrid_se_applicable, pivot_ordering_masks
from .stats import SearchStatistics


# ----------------------------------------------------------------------
# Ledger buffer backends
# ----------------------------------------------------------------------
#: Values the ``REPRO_KERNEL_BACKEND`` environment variable accepts.
LEDGER_BACKENDS = ("auto", "array", "numpy", "list")

#: The process-default backend (resolved once at import; see set_ledger_backend).
DEFAULT_LEDGER_BACKEND = "auto"

#: The ``auto`` backend switches from Python lists to flat ``array('i')``
#: buffers at this ledger width.  Copies/resets favour arrays (one memcpy vs
#: a pointer-by-pointer loop: 206 ns vs 81 ns at width 128, 33 us vs 1.8 us
#: at 16384) while indexed ``buf[i] += 1`` updates favour lists (~29 ns vs
#: ~94 ns — arrays box an int per access), so the winner depends on touches
#: per copy.  Measured with ``scripts/derive_backend_crossover.py`` on a
#: 12k-vertex power-law graph: the kernelized shrink pass does ~0.5 indexed
#: updates per full-width reset, and the break-even rate crosses that
#: between widths 64 and 96 (1.9 touches/copy at 128, rising linearly with
#: width).  128 keeps ~4x margin for update-heavier branch-ledger workloads
#: while compact DC subproblem states — small and touch-dominated — stay on
#: lists; end-to-end, auto matches the forced-array backend (1.50 s vs the
#: list backend's 2.05 s cold DCFastQC at n=12000).
AUTO_ARRAY_MIN_WIDTH = 128


def _array_make(values: Iterable[int]) -> array:
    return array("i", values)


def _array_zeros(length: int) -> array:
    return array("i", bytes(4 * length))


def _array_copy(buffer: array) -> array:
    return buffer[:]


def _list_make(values: Iterable[int]) -> list[int]:
    return list(values)


def _list_zeros(length: int) -> list[int]:
    return [0] * length


def _list_copy(buffer: list[int]) -> list[int]:
    return buffer[:]


def _auto_make(values) -> "array | list[int]":
    values = values if isinstance(values, list) else list(values)
    if len(values) >= AUTO_ARRAY_MIN_WIDTH:
        return array("i", values)
    return values


def _auto_zeros(length: int) -> "array | list[int]":
    if length >= AUTO_ARRAY_MIN_WIDTH:
        return array("i", bytes(4 * length))
    return [0] * length


def _auto_copy(buffer) -> "array | list[int]":
    return buffer[:]


def _resolve_backend(name: str):
    """Return ``(name, make, zeros, copy)`` for a backend, falling back safely.

    The numpy backend is optional: when numpy is not installed the resolver
    warns and degrades to the stdlib ``array('i')`` backend instead of
    failing, so ``REPRO_KERNEL_BACKEND=numpy`` is always safe to export.
    """
    if name == "numpy":
        try:
            import numpy
        except ImportError:
            warnings.warn("REPRO_KERNEL_BACKEND=numpy requested but numpy is "
                          "not installed; falling back to the array backend",
                          RuntimeWarning, stacklevel=3)
            return _resolve_backend("array")
        return ("numpy",
                lambda values: numpy.fromiter(values, dtype=numpy.int64),
                lambda length: numpy.zeros(length, dtype=numpy.int64),
                lambda buffer: buffer.copy())
    if name == "list":
        return ("list", _list_make, _list_zeros, _list_copy)
    if name == "array":
        return ("array", _array_make, _array_zeros, _array_copy)
    if name != "auto":
        warnings.warn(f"unknown REPRO_KERNEL_BACKEND {name!r}; expected one of "
                      f"{LEDGER_BACKENDS}; falling back to the auto backend",
                      RuntimeWarning, stacklevel=3)
    return ("auto", _auto_make, _auto_zeros, _auto_copy)


_BACKEND_NAME, _make_ledger, _zero_ledger, _copy_ledger = _resolve_backend(
    os.environ.get("REPRO_KERNEL_BACKEND", DEFAULT_LEDGER_BACKEND))


def ledger_backend() -> str:
    """The active ledger buffer backend (``"array"``, ``"numpy"`` or ``"list"``)."""
    return _BACKEND_NAME


def set_ledger_backend(name: str) -> str:
    """Switch the ledger buffer backend; returns the previous backend name.

    The normal configuration surface is the ``REPRO_KERNEL_BACKEND``
    environment variable (read once at import); this setter exists for tests
    and interactive experiments.  Buffers created before the switch keep
    working — the backends only differ in construction and copy.
    """
    global _BACKEND_NAME, _make_ledger, _zero_ledger, _copy_ledger
    previous = _BACKEND_NAME
    _BACKEND_NAME, _make_ledger, _zero_ledger, _copy_ledger = _resolve_backend(name)
    return previous


class BranchState:
    """A branch ``(S, C, D)`` carrying incremental degree ledgers.

    The masks mirror :class:`repro.core.branch.Branch` (same index space, same
    invariants); on top of them the state maintains, for every member of the
    union, ``deg_in_s[v]`` and ``deg_in_union[v]`` — the number of neighbours
    of ``v`` inside ``S`` and inside ``S ∪ C``.  Ledger entries of vertices
    outside ``S ∪ C`` are never read: single-vertex moves update them anyway
    (the updates are symmetric), while :meth:`remove_mask`'s mass-removal
    path deliberately lets them go stale.

    States are mutable; :meth:`copy` is an O(n) flat-buffer copy used when a
    branch forks into children, after which each single-vertex move costs
    ``O(deg(v))``.  The ledgers live in flat buffers provided by the active
    backend (``array('i')`` by default, numpy or plain lists via
    ``REPRO_KERNEL_BACKEND``), so the per-child copy is a memcpy rather than
    a pointer-by-pointer Python list copy.
    """

    __slots__ = ("graph", "stats", "s_mask", "c_mask", "d_mask",
                 "s_size", "c_size", "deg_in_s", "deg_in_union")

    def __init__(self, graph: Graph, stats: SearchStatistics | None,
                 s_mask: int, c_mask: int, d_mask: int,
                 s_size: int, c_size: int,
                 deg_in_s, deg_in_union) -> None:
        self.graph = graph
        self.stats = stats
        self.s_mask = s_mask
        self.c_mask = c_mask
        self.d_mask = d_mask
        self.s_size = s_size
        self.c_size = c_size
        self.deg_in_s = deg_in_s
        self.deg_in_union = deg_in_union

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_branch(cls, graph: Graph, branch: Branch,
                    stats: SearchStatistics | None = None) -> "BranchState":
        """Build the ledgers for an arbitrary branch (one full scan, then O(deg))."""
        n = graph.vertex_count
        deg_in_s = [0] * n
        deg_in_union = [0] * n
        s_mask = branch.s_mask
        union = branch.union_mask
        masks = graph.adjacency_masks()
        for v in iter_bits(union):
            adjacency = masks[v]
            deg_in_union[v] = (adjacency & union).bit_count()
            if s_mask:
                deg_in_s[v] = (adjacency & s_mask).bit_count()
        return cls(graph, stats, s_mask, branch.c_mask, branch.d_mask,
                   branch.partial_size, branch.candidate_size,
                   _make_ledger(deg_in_s), _make_ledger(deg_in_union))

    def copy(self) -> "BranchState":
        """Fork the state (ledger buffers are copied, the graph is shared)."""
        return BranchState(self.graph, self.stats, self.s_mask, self.c_mask,
                          self.d_mask, self.s_size, self.c_size,
                          _copy_ledger(self.deg_in_s),
                          _copy_ledger(self.deg_in_union))

    def to_branch(self) -> Branch:
        """The immutable mask view (reference interop, tests, diagnostics)."""
        return Branch(self.s_mask, self.c_mask, self.d_mask)

    # ------------------------------------------------------------------
    # O(deg) vertex moves
    # ------------------------------------------------------------------
    def include(self, vertex: int) -> None:
        """Move a candidate into S: only ``deg_in_s`` of its neighbours changes.

        The update walk is restricted to neighbours still inside the union —
        entries of vertices that left the union are stale by contract (no
        rule reads them, and a vertex never re-enters the union).
        """
        bit = 1 << vertex
        self.s_mask |= bit
        self.c_mask &= ~bit
        self.s_size += 1
        self.c_size -= 1
        deg_in_s = self.deg_in_s
        bit_length = int.bit_length
        updates = 0
        remaining = self.graph.adjacency_mask(vertex) & (self.s_mask | self.c_mask)
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            deg_in_s[bit_length(low) - 1] += 1
            updates += 1
        stats = self.stats
        if stats is not None:
            stats.ledger_moves += 1
            stats.ledger_updates += updates

    def remove(self, vertex: int, exclude: bool = False) -> None:
        """Drop a candidate from the union (to D when ``exclude``, else to X).

        Only ``deg_in_union`` of its still-in-union neighbours changes;
        ``deg_in_s`` is untouched because the vertex was not in S.
        """
        bit = 1 << vertex
        self.c_mask &= ~bit
        self.c_size -= 1
        if exclude:
            self.d_mask |= bit
        deg_in_union = self.deg_in_union
        bit_length = int.bit_length
        updates = 0
        remaining = self.graph.adjacency_mask(vertex) & (self.s_mask | self.c_mask)
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            deg_in_union[bit_length(low) - 1] -= 1
            updates += 1
        stats = self.stats
        if stats is not None:
            stats.ledger_moves += 1
            stats.ledger_updates += updates

    def remove_mask(self, removal_mask: int) -> None:
        """Drop a batch of candidates to X in one call (mass-pruning fast path).

        Decides identically to ``remove(v)`` for each set bit, with the mask
        update and the statistics accounting batched — and with the ledger
        maintenance **adaptive**: when the batch drops most of the union
        (FastQC's refinement and Quick+'s Type I rules routinely gut a
        child's candidate set), recomputing the survivors' ``deg_in_union``
        with one restricted popcount each is far cheaper than walking every
        dropped vertex's neighbourhood.  The recompute path leaves ledger
        entries of vertices *outside* the union stale, which is safe: no
        rule reads them, and a vertex that left the union never re-enters
        it.  ``deg_in_s`` is untouched either way (the batch leaves S
        alone).
        """
        deg_in_union = self.deg_in_union
        self.c_mask &= ~removal_mask
        dropped = removal_mask.bit_count()
        self.c_size -= dropped
        union_size = self.s_size + self.c_size
        bit_length = int.bit_length
        if dropped * 3 >= union_size:
            masks = self.graph.adjacency_masks()
            union = self.s_mask | self.c_mask
            remaining = union
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                v = bit_length(low) - 1
                deg_in_union[v] = (masks[v] & union).bit_count()
            updates = union_size
        else:
            masks = self.graph.adjacency_masks()
            union = self.s_mask | self.c_mask
            updates = 0
            remaining = removal_mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                walk = masks[bit_length(low) - 1] & union
                while walk:
                    bit = walk & -walk
                    walk ^= bit
                    deg_in_union[bit_length(bit) - 1] -= 1
                    updates += 1
        stats = self.stats
        if stats is not None:
            stats.ledger_moves += dropped
            stats.ledger_updates += updates

    # ------------------------------------------------------------------
    # Derived views (used by tests and the emit path)
    # ------------------------------------------------------------------
    @property
    def union_mask(self) -> int:
        return self.s_mask | self.c_mask

    @property
    def union_size(self) -> int:
        return self.s_size + self.c_size


# ----------------------------------------------------------------------
# Kernelized refinement (mirrors repro.core.refinement.progressively_refine)
# ----------------------------------------------------------------------
def refine_state(state: BranchState, gamma: float, theta: int,
                 max_rounds: int | None = None
                 ) -> tuple[bool, int, int, int, int]:
    """Refine a branch state in place until the C1&2 / Rules 1–2 fixpoint.

    Returns ``(pruned, tau_value, rounds, removed_by_rule1, removed_by_rule2)``
    with exactly the semantics of
    :func:`repro.core.refinement.progressively_refine`: same prune decisions,
    same surviving candidate set, same final disconnection budget.  All checks
    are O(|S|) / O(|C|) ledger scans; each removal costs O(deg).

    ``sigma(B)`` and ``tau(sigma(B))`` are evaluated in exact integer
    arithmetic over ``gamma = p/q`` instead of :class:`fractions.Fraction`
    objects: with ``sigma = num/den``, ``tau(sigma) = ((q-p)*num + p*den) //
    (q*den)`` — same values, no rational-number allocations in the hot loop.
    """
    gamma_exact = gamma_fraction(gamma)
    p = gamma_exact.numerator
    q = gamma_exact.denominator
    removed_rule1 = 0
    removed_rule2 = 0
    rounds = 0
    deg_in_s = state.deg_in_s
    deg_in_union = state.deg_in_union
    masks = state.graph.adjacency_masks()
    bit_length = int.bit_length
    while True:
        rounds += 1
        s_size = state.s_size
        union_size = s_size + state.c_size
        if s_size == 0:
            sigma_num, sigma_den = union_size, 1
            delta_s = 0
        else:
            min_deg_s = s_size
            min_deg_u = union_size
            remaining = state.s_mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                v = bit_length(low) - 1
                ds = deg_in_s[v]
                if ds < min_deg_s:
                    min_deg_s = ds
                du = deg_in_union[v]
                if du < min_deg_u:
                    min_deg_u = du
            delta_s = s_size - min_deg_s
            # sigma = min(|S ∪ C|, d_min/gamma + 1): compare via cross products.
            alt_num = min_deg_u * q + p        # (d_min*q + p) / p
            if union_size * p <= alt_num:
                sigma_num, sigma_den = union_size, 1
            else:
                sigma_num, sigma_den = alt_num, p
        tau_value = ((q - p) * sigma_num + p * sigma_den) // (q * sigma_den)
        if sigma_num < s_size * sigma_den or delta_s > tau_value:
            return True, tau_value, rounds, removed_rule1, removed_rule2

        # Rule 1: v ∈ C falls when delta_bar(v, S) + 1 > tau, or when some
        # u ∈ S already sitting at the budget is not adjacent to v.
        critical_mask = 0
        if s_size:
            remaining = state.s_mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                if s_size - deg_in_s[bit_length(low) - 1] >= tau_value:
                    critical_mask |= low
        removal_mask = 0
        threshold = tau_value - 1  # delta_bar(v, S) + 1 > tau  <=>  s - deg > tau - 1
        remaining = state.c_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            v = bit_length(low) - 1
            if s_size - deg_in_s[v] > threshold or (critical_mask & ~masks[v]):
                removal_mask |= low
        removed_this_round = 0
        if removal_mask:
            removed_this_round = removal_mask.bit_count()
            removed_rule1 += removed_this_round
            state.remove_mask(removal_mask)

        # Rule 2: v ∈ C falls when delta(v, S ∪ C) < theta - tau (the union —
        # hence the ledger — already reflects the Rule 1 removals).
        required = theta - tau_value
        if required > 0:
            removal_mask = 0
            remaining = state.c_mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                v = bit_length(low) - 1
                if deg_in_union[v] < required:
                    removal_mask |= low
            if removal_mask:
                dropped = removal_mask.bit_count()
                removed_rule2 += dropped
                removed_this_round += dropped
                state.remove_mask(removal_mask)

        if removed_this_round == 0:
            return False, tau_value, rounds, removed_rule1, removed_rule2
        if max_rounds is not None and rounds >= max_rounds:
            s_size = state.s_size
            union_size = s_size + state.c_size
            if s_size == 0:
                sigma_num, sigma_den = union_size, 1
                delta_s = 0
            else:
                min_deg_s = min(deg_in_s[v] for v in iter_bits(state.s_mask))
                min_deg_u = min(deg_in_union[v] for v in iter_bits(state.s_mask))
                delta_s = s_size - min_deg_s
                alt_num = min_deg_u * q + p
                if union_size * p <= alt_num:
                    sigma_num, sigma_den = union_size, 1
                else:
                    sigma_num, sigma_den = alt_num, p
            tau_value = ((q - p) * sigma_num + p * sigma_den) // (q * sigma_den)
            pruned = sigma_num < s_size * sigma_den or delta_s > tau_value
            return pruned, tau_value, rounds, removed_rule1, removed_rule2


# ----------------------------------------------------------------------
# Kernelized termination and pivoting
# ----------------------------------------------------------------------
def union_min_degree(state: BranchState) -> tuple[int, int]:
    """Return ``(min deg_in_union over S ∪ C, first argmin)`` in one O(|S ∪ C|) scan.

    ``Delta(S ∪ C) = |S ∪ C| - min``, and the argmin (lowest index among the
    minima) is exactly the pivot the reference
    :func:`repro.core.branching.select_pivot` picks, because it scans in
    increasing index order and only replaces on strictly more disconnections.
    """
    deg_in_union = state.deg_in_union
    best = state.s_size + state.c_size + 1
    best_vertex = -1
    bit_length = int.bit_length
    remaining = state.s_mask | state.c_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        v = bit_length(low) - 1
        d = deg_in_union[v]
        if d < best:
            best = d
            best_vertex = v
    return best, best_vertex


def terminates_by_theta_state(state: BranchState, theta: int, tau_value: int) -> bool:
    """Ledger form of termination condition T2 (Section 4.5)."""
    union_size = state.s_size + state.c_size
    if union_size < theta:
        return True
    required = theta - tau_value
    if required <= 0:
        return False
    deg_in_union = state.deg_in_union
    bit_length = int.bit_length
    remaining = state.s_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        if deg_in_union[bit_length(low) - 1] < required:
            return True
    return False


def pivot_from_state(state: BranchState, vertex: int, tau_value: int) -> PivotInfo:
    """Build the :class:`PivotInfo` of a pivot vertex from the ledgers alone."""
    s_size = state.s_size
    union_size = s_size + state.c_size
    deg_s = state.deg_in_s[vertex]
    deg_u = state.deg_in_union[vertex]
    return PivotInfo(
        vertex=vertex,
        in_partial=bool(state.s_mask >> vertex & 1),
        disconnections_in_partial=s_size - deg_s,
        disconnections_in_candidates=state.c_size - (deg_u - deg_s),
        disconnections_in_union=union_size - deg_u,
        budget=tau_value,
    )


def pivot_ordering_state(state: BranchState, pivot: PivotInfo) -> list[int]:
    """The candidate ordering induced by the pivot (Equations 15 and 16)."""
    return pivot_ordering_masks(state.graph.adjacency_mask(pivot.vertex),
                                state.c_mask, pivot)


def tau_sigma_state(state: BranchState, gamma: float) -> int:
    """Ledger form of ``tau(sigma(B))`` (Equations 8 and 10).

    Mirrors :func:`repro.core.conditions.tau_sigma` exactly, evaluated in
    integer arithmetic over ``gamma = p/q``: with ``sigma = num/den``,
    ``tau(sigma) = ((q-p)*num + p*den) // (q*den)``.  ``d_min(B)`` comes from
    one O(|S|) ledger scan instead of per-vertex popcounts.
    """
    gamma_exact = gamma_fraction(gamma)
    p = gamma_exact.numerator
    q = gamma_exact.denominator
    union_size = state.s_size + state.c_size
    if state.s_size == 0:
        sigma_num, sigma_den = union_size, 1
    else:
        deg_in_union = state.deg_in_union
        bit_length = int.bit_length
        min_deg = union_size
        remaining = state.s_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            d = deg_in_union[bit_length(low) - 1]
            if d < min_deg:
                min_deg = d
        alt_num = min_deg * q + p          # (d_min*q + p) / p
        if union_size * p <= alt_num:
            sigma_num, sigma_den = union_size, 1
        else:
            sigma_num, sigma_den = alt_num, p
    return ((q - p) * sigma_num + p * sigma_den) // (q * sigma_den)


def partial_is_quasi_clique_state(state: BranchState, gamma: float) -> bool:
    """Ledger form of ``mask_is_quasi_clique(graph, S, gamma)`` (Lemma 1).

    ``Delta(S) = |S| - min deg_in_s`` and ``tau(|S|)`` are both integer
    expressions over the ledgers, so the check is one O(|S|) scan.
    """
    s_size = state.s_size
    if s_size == 0:
        return False
    gamma_exact = gamma_fraction(gamma)
    p = gamma_exact.numerator
    q = gamma_exact.denominator
    deg_in_s = state.deg_in_s
    bit_length = int.bit_length
    min_deg = s_size
    remaining = state.s_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        d = deg_in_s[bit_length(low) - 1]
        if d < min_deg:
            min_deg = d
    return s_size - min_deg <= ((q - p) * s_size + p) // q


# ----------------------------------------------------------------------
# Kernelized branch generation (mirrors repro.core.branching)
# ----------------------------------------------------------------------
def se_children(state: BranchState, ordering: list[int],
                keep: int | None = None, skip: int = 0) -> list[BranchState]:
    """SE children over ``ordering``: child ``i`` includes ``v_i``, excludes priors."""
    limit = len(ordering) if keep is None else min(keep, len(ordering))
    children = []
    running = state.copy()
    for position in range(limit):
        vertex = ordering[position]
        if position >= skip:
            child = running.copy()
            child.include(vertex)
            children.append(child)
        running.remove(vertex, exclude=True)
    return children


def sym_se_children(state: BranchState, ordering: list[int],
                    keep: int | None = None, skip: int = 0) -> list[BranchState]:
    """Sym-SE children: child ``i`` includes ``v_1..v_{i-1}``, excludes ``v_i``."""
    total = len(ordering) + 1
    limit = total if keep is None else min(keep, total)
    children = []
    running = state.copy()
    for position in range(limit):
        if position < len(ordering):
            vertex = ordering[position]
            if position >= skip:
                child = running.copy()
                child.remove(vertex, exclude=True)
                children.append(child)
            running.include(vertex)
        elif position >= skip:
            # The |C|+1-th branch includes the whole candidate set; the running
            # state already did exactly that, so it is the child itself.
            children.append(running)
    return children


def generate_child_states(state: BranchState, pivot: PivotInfo,
                          method: str) -> list[BranchState]:
    """Ledger counterpart of :func:`repro.core.branching.generate_branches`."""
    ordering = pivot_ordering_state(state, pivot)
    if method == "se":
        return se_children(state, ordering)
    sym_keep = max(1, pivot.a + 1)
    if method == "sym-se":
        return sym_se_children(state, ordering, keep=sym_keep)
    if method == "hybrid":
        if hybrid_se_applicable(pivot):
            excluding = se_children(state, ordering, keep=pivot.b, skip=1)
            including = sym_se_children(state, ordering, keep=pivot.a + 1, skip=1)
            return excluding + including
        return sym_se_children(state, ordering, keep=sym_keep)
    raise ValueError(f"unknown branching method {method!r}")


# ----------------------------------------------------------------------
# Kernelized subproblem shrinking (mirrors DCFastQC._one_hop_prune /
# _two_hop_prune, Lines 5-6 of Algorithm 3)
# ----------------------------------------------------------------------
class ShrinkLedgers:
    """Adaptive degree / common-neighbour ledgers for subproblem shrinking.

    Mirrors ``DCFastQC._one_hop_prune`` / ``_two_hop_prune`` bit-for-bit while
    eliminating redundant full-width popcount rescans:

    * The **first** pass of each rule runs store-free: one restricted popcount
      per scanned vertex, fused with the removal decision, in a tight
      bit-extraction loop.  On a fresh 2-hop ball this pass typically removes
      most members, so recording per-vertex values would be wasted work.
    * From each rule's **second** pass on, the values live in dense flat
      buffers (same backend as :class:`BranchState`) that are reconciled with
      the alive set lazily: few deaths since the last reconcile decrement only
      the dead vertices' still-alive neighbours (``O(deg ∩ ball)`` per death),
      a gutted ball recomputes the few survivors fused into the reading pass,
      and a pass over an unchanged alive set is pure array reads — the
      "round ``k+1`` never re-popcounts what round ``k`` established" path.
    Every pass collects its removals before applying any of them, so the
    surviving vertex set is exactly the one the mask-based reference produces
    (each pass is a simultaneous removal against the pass-start set).
    Entries of dead vertices (and of the root, which no rule ever tests) are
    stale by design.
    """

    __slots__ = ("graph", "stats", "root_clear", "root_adjacency",
                 "alive_mask", "alive_count", "deg", "common", "fresh_mask",
                 "common_seeded", "track_common", "_deg_passes",
                 "_common_passes", "_counts")

    def __init__(self, graph: Graph, root_index: int, ball_mask: int,
                 stats: SearchStatistics | None = None,
                 track_common: bool = True) -> None:
        self.graph = graph
        self.stats = stats
        # CSR-backed graphs expose `restricted_counts`, which batches an
        # entire counting pass over flat adjacency rows with byte-buffer
        # membership tests.  On wide graphs that replaces, per scanned
        # vertex, one lazy O(deg + n/8) mask build plus an O(n/64) full-width
        # popcount.  (Bit-slicing the one-hop pass — the other candidate
        # batching — does not pay here: unlike the two-hop rule, the
        # accumulation set equals the scan set, so the plane adds cost as
        # much as the popcounts they replace.)
        self._counts = getattr(graph, "restricted_counts", None)
        self.root_clear = ~(1 << root_index)
        self.root_adjacency = graph.adjacency_mask(root_index)
        self.alive_mask = ball_mask
        self.alive_count = ball_mask.bit_count()
        self.track_common = track_common
        # Buffers allocate lazily: balls whose shrinking finishes within the
        # store-free first passes never pay for them.
        self.deg = None
        self.common = None
        # None: the ledgers have never been seeded.  Otherwise: the alive mask
        # the degree ledger (and the common ledger, when ``common_seeded``)
        # was last reconciled against.
        self.fresh_mask = None
        self.common_seeded = False
        self._deg_passes = 0
        self._common_passes = 0

    # ------------------------------------------------------------------
    # Removal application and freshness bookkeeping
    # ------------------------------------------------------------------
    def remove_vertices(self, removals) -> None:
        """Clear removed bits; ledgers go stale until the next reconcile."""
        alive = self.alive_mask
        count = 0
        for v in removals:
            alive &= ~(1 << v)
            count += 1
        self.alive_mask = alive
        self.alive_count -= count

    def _needs_reseed(self) -> bool:
        """True when reconciling should recompute survivors outright (never
        seeded, or a mass removal made decrements the dearer option)."""
        fresh = self.fresh_mask
        if fresh is None:
            return True
        dead = (fresh & ~self.alive_mask).bit_count()
        return dead * 3 >= self.alive_count

    def _decrement_walk(self) -> None:
        """Reconcile the ledgers by walking the dead vertices' neighbours."""
        alive = self.alive_mask
        masks = self.graph.adjacency_masks()
        deg = self.deg
        common = self.common
        update_common = self.common_seeded
        root_adjacency = self.root_adjacency
        updates = 0
        dead = self.fresh_mask & ~alive
        while dead:
            low = dead & -dead
            v = low.bit_length() - 1
            dead ^= low
            drop_common = update_common and low & root_adjacency
            remaining = masks[v] & alive
            while remaining:
                bit = remaining & -remaining
                u = bit.bit_length() - 1
                remaining ^= bit
                deg[u] -= 1
                if drop_common:
                    # v stops being a common neighbour of the root and u.
                    common[u] -= 1
                updates += 1
        self.fresh_mask = alive
        if self.stats is not None:
            self.stats.shrink_ledger_updates += updates

    def refresh(self) -> None:
        """Force the ledgers fresh against the current alive set (seeds them
        on first use).  The pruning passes prefer fusing a reseed into their
        own scan; this is the standalone hook for tests and direct users."""
        alive = self.alive_mask
        if self.fresh_mask == alive and (self.common_seeded
                                         or not self.track_common):
            return
        if self.fresh_mask is not None and not self._needs_reseed() and (
                self.common_seeded or not self.track_common):
            self._decrement_walk()
            return
        self._reseed(alive)

    def _reseed(self, alive: int) -> None:
        """Recompute both ledgers for every alive vertex (fused popcounts)."""
        masks = self.graph.adjacency_masks()
        if self.deg is None:
            self.deg = _zero_ledger(self.graph.vertex_count)
        deg = self.deg
        common = None
        if self.track_common:
            if self.common is None:
                self.common = _zero_ledger(self.graph.vertex_count)
            common = self.common
        root_alive = self.root_adjacency & alive
        updates = 0
        if self._counts is not None:
            for v, value in self._counts(alive).items():
                deg[v] = value
                updates += 1
            if common is not None:
                for v, value in self._counts(alive, root_alive).items():
                    common[v] = value
        else:
            remaining = alive
            while remaining:
                low = remaining & -remaining
                v = low.bit_length() - 1
                remaining ^= low
                restricted = masks[v] & alive
                deg[v] = restricted.bit_count()
                if common is not None:
                    common[v] = (restricted & root_alive).bit_count()
                updates += 1
        self.fresh_mask = alive
        if common is not None:
            self.common_seeded = True
        if self.stats is not None:
            self.stats.shrink_ledger_updates += updates

    # ------------------------------------------------------------------
    # Pruning passes
    # ------------------------------------------------------------------
    def one_hop_round(self, required_degree: int) -> int:
        """One simultaneous pass of the one-hop (degree) pruning rule."""
        alive = self.alive_mask
        scan = alive & self.root_clear
        removals = []
        if self.fresh_mask == alive:
            deg = self.deg
            while scan:
                low = scan & -scan
                v = low.bit_length() - 1
                scan ^= low
                if deg[v] < required_degree:
                    removals.append(v)
        elif self.fresh_mask is not None and not self._needs_reseed():
            self._decrement_walk()
            deg = self.deg
            while scan:
                low = scan & -scan
                v = low.bit_length() - 1
                scan ^= low
                if deg[v] < required_degree:
                    removals.append(v)
        elif self._deg_passes == 0:
            if self._counts is not None:
                # CSR batching: one row scan per member against the alive
                # byte buffer, no per-member mask build or wide popcount.
                for v, value in self._counts(scan, alive).items():
                    if value < required_degree:
                        removals.append(v)
            else:
                # First pass: store-free fused popcount + decide (the hottest
                # loop of the shrinking phase — everything prebound).
                masks = self.graph.adjacency_masks()
                bit_length = int.bit_length
                bit_count = int.bit_count
                append = removals.append
                while scan:
                    low = scan & -scan
                    scan ^= low
                    v = bit_length(low) - 1
                    if bit_count(masks[v] & alive) < required_degree:
                        append(v)
        else:
            self._reseed(alive)
            deg = self.deg
            while scan:
                low = scan & -scan
                v = low.bit_length() - 1
                scan ^= low
                if deg[v] < required_degree:
                    removals.append(v)
        self._deg_passes += 1
        if removals:
            self.remove_vertices(removals)
        return len(removals)

    def _two_hop_bulk(self, scan: int, threshold: int,
                      threshold_plus: int) -> int:
        """Bit-sliced two-hop pass: return the mask of vertices to remove.

        Accumulates, for every graph vertex simultaneously, the count
        ``|Γ(v) ∩ R|`` (``R = Γ(root) ∩ alive``) in vertical binary counter
        planes: adding one ``w ∈ R`` is a ripple-carry over ``k`` full-width
        masks, so the whole pass costs ``O(|R| * k)`` big-int operations with
        ``k = (threshold + 2).bit_length()``, independent of the scan size.
        The comparison against the two thresholds is plane logic; saturated
        counters (``>= 2**k > threshold_plus``) always survive.
        """
        if threshold_plus <= 0:
            return 0
        root_adjacency = self.root_adjacency
        k = threshold_plus.bit_length()
        planes = [0] * k
        sat = 0
        masks = self.graph.adjacency_masks()
        members = root_adjacency & self.alive_mask
        while members:
            low = members & -members
            members ^= low
            carry = masks[low.bit_length() - 1]
            for i in range(k):
                plane = planes[i]
                planes[i] = plane ^ carry
                carry &= plane
                if not carry:
                    break
            else:
                sat |= carry
        removed = 0
        non_adjacent = scan & ~root_adjacency
        if non_adjacent:
            removed = non_adjacent & ~self._ge_mask(planes, sat, threshold_plus)
        if threshold > 0:
            adjacent = scan & root_adjacency
            if adjacent:
                removed |= adjacent & ~self._ge_mask(planes, sat, threshold)
        return removed

    @staticmethod
    def _ge_mask(planes: list[int], sat: int, value: int) -> int:
        """Positions whose plane-encoded counter is ``>= value`` (value >= 1).

        Standard bitwise magnitude comparison, most significant plane first;
        ``value`` must be representable in ``len(planes)`` bits.
        """
        greater = 0
        equal = -1  # arbitrary-precision all-ones
        for i in range(len(planes) - 1, -1, -1):
            plane = planes[i]
            if (value >> i) & 1:
                equal &= plane
            else:
                greater |= equal & plane
        return greater | equal | sat

    def two_hop_round(self, threshold: int) -> int:
        """One simultaneous pass of the two-hop (common-neighbour) rule.

        ``threshold`` applies to root neighbours; non-neighbours of the root
        need two more common neighbours (the intermediate vertices of two
        disjoint 2-hop paths), exactly as in the mask-based rule.
        """
        alive = self.alive_mask
        root_adjacency = self.root_adjacency
        threshold_plus = threshold + 2
        scan = alive & self.root_clear
        removals = []
        if self.common_seeded and self.fresh_mask == alive:
            common = self.common
            while scan:
                low = scan & -scan
                v = low.bit_length() - 1
                scan ^= low
                if common[v] < (threshold if low & root_adjacency
                                else threshold_plus):
                    removals.append(v)
        elif self.common_seeded and not self._needs_reseed():
            self._decrement_walk()
            common = self.common
            while scan:
                low = scan & -scan
                v = low.bit_length() - 1
                scan ^= low
                if common[v] < (threshold if low & root_adjacency
                                else threshold_plus):
                    removals.append(v)
        elif self._common_passes == 0:
            # First pass, bit-sliced: common(v) = |Γ(v) ∩ R| with
            # R = Γ(root) ∩ alive.  R is small (it is bounded by the root's
            # degree), so instead of one popcount per scanned member we add
            # each w ∈ R's adjacency mask into binary counter planes — one
            # vertical counter per graph vertex, O(|R| * log threshold)
            # full-width mask operations total — and read off the removal
            # set with plane logic.  No per-member loop at all.
            self._common_passes += 1
            removed_mask = self._two_hop_bulk(scan, threshold, threshold_plus)
            if removed_mask:
                self.alive_mask = alive & ~removed_mask
                dropped = removed_mask.bit_count()
                self.alive_count -= dropped
                return dropped
            return 0
        else:
            self._reseed(alive)
            common = self.common
            while scan:
                low = scan & -scan
                v = low.bit_length() - 1
                scan ^= low
                if common[v] < (threshold if low & root_adjacency
                                else threshold_plus):
                    removals.append(v)
        self._common_passes += 1
        if removals:
            self.remove_vertices(removals)
        return len(removals)


# ----------------------------------------------------------------------
# Explicit work-stack driver (replaces the recursive search)
# ----------------------------------------------------------------------
#: Values the enumerators accept for their ``kernel`` knob.
KERNELS = ("ledger", "reference")


class BranchFrame:
    """One unresolved ``close`` obligation of the steal-aware driver.

    The plain driver keeps close obligations implicit in stack order: a
    branch's ``(True, payload)`` entry sits below its children, so by the time
    it pops every descendant has been processed.  Work stealing breaks that
    invariant — a stolen subtree finishes *elsewhere*, possibly long after the
    local stack drained — so each interior branch gets an explicit frame that
    counts its outstanding contributions (``pending``: unresolved child frames
    plus stolen subtrees) and accumulates the found-a-quasi-clique verdict
    (``found``).  ``close(payload, found)`` runs only once ``popped`` (the
    frame's own stack entry was reached) *and* ``pending == 0``.

    ``on_resolve`` is set on task-root frames by the stealing scheduler: it
    fires exactly once with the subtree's final verdict, which is how a worker
    reports a (possibly parked) task back to the coordinator.
    """

    __slots__ = ("payload", "parent", "found", "pending", "popped", "on_resolve")

    def __init__(self, payload=None, parent: "BranchFrame | None" = None) -> None:
        self.payload = payload
        self.parent = parent
        self.found = False
        self.pending = 0
        self.popped = False
        self.on_resolve = None


def resolve_ready_frames(frame: BranchFrame, close: Callable):
    """Run ``close`` up the frame chain while frames are fully contributed.

    Returns the root frame's verdict when the cascade resolves it, else None
    (some frame is still waiting on a stolen subtree or unpopped entry).
    """
    while frame.popped and frame.pending == 0:
        if frame.parent is None:
            result = frame.found
        else:
            result = bool(close(frame.payload, frame.found)) or frame.found
        if frame.on_resolve is not None:
            callback, frame.on_resolve = frame.on_resolve, None
            callback(result)
        parent = frame.parent
        if parent is None:
            return result
        if result:
            parent.found = True
        parent.pending -= 1
        frame = parent
    return None


def contribute_steal_result(frame: BranchFrame, found: bool, close: Callable):
    """Apply a stolen subtree's verdict to its parked parent frame.

    The inverse of the ``pending += 1`` a steal performs: decrement, fold the
    verdict in, and resolve whatever the contribution unblocked.
    """
    if found:
        frame.found = True
    frame.pending -= 1
    return resolve_ready_frames(frame, close)


def _enumerate_with_scheduler(root, expand: Callable, close: Callable,
                              scheduler, poll) -> bool | None:
    """The frame-based driver variant used when a stealing scheduler is active.

    Behaviourally identical to the plain loop below — same visit order, same
    ``expand``/``close`` call sequence — except that pending subtrees may be
    removed from the *bottom* of the stack by ``scheduler`` and finished by
    another worker.  Returns the root verdict, or None when the root is parked
    on stolen subtrees (its ``on_resolve`` callback fires later, when the last
    steal result is contributed via :func:`contribute_steal_result`).
    """
    root_frame = BranchFrame()
    stack: list = [(root, root_frame)]

    def steal():
        # Bottom-most pending visit, excluding the entry about to be popped:
        # stealing the worker's only remaining visit would just idle *this*
        # worker instead.  Returns (state, parent_frame) with the parent's
        # pending count already bumped, or None when nothing is stealable.
        for index in range(len(stack) - 1):
            entry = stack[index]
            if type(entry) is tuple:
                del stack[index]
                state, parent = entry
                parent.pending += 1
                return state, parent
        return None

    scheduler.begin_task(steal, close, root_frame)
    on_branch = scheduler.on_branch
    while stack:
        entry = stack.pop()
        if type(entry) is not tuple:
            entry.popped = True
            resolve_ready_frames(entry, close)
            continue
        state, parent = entry
        if poll is not None and poll(len(stack)):
            return True
        on_branch()
        outcome = expand(state)
        if isinstance(outcome, bool):
            if outcome:
                parent.found = True
            continue
        children, close_payload = outcome
        frame = BranchFrame(close_payload, parent)
        parent.pending += 1
        stack.append(frame)
        for child in reversed(children):
            stack.append((child, frame))
    root_frame.popped = True
    return resolve_ready_frames(root_frame, close)


def depth_first_enumerate(root, expand: Callable, close: Callable,
                          should_stop: Callable[[], bool] | None = None,
                          ticker=None, scheduler=None) -> bool | None:
    """Post-order depth-first search over branches with an explicit work stack.

    ``expand(branch)`` is called once per visited branch and returns either a
    ``bool`` (the branch terminated: pruned, T1/T2, or emitted) or a tuple
    ``(children, payload)``; after every child's subtree completes,
    ``close(payload, found_in_subtree)`` decides the branch's own result (the
    ``G[S]`` fallback output of Algorithms 1–2).  The return value is True iff
    a quasi-clique was output anywhere in the tree — identical to the old
    recursion, but with O(depth) heap frames instead of Python stack frames.

    ``should_stop`` is polled before each expansion; when it fires the search
    abandons the stack and reports True so no ancestor emits its partial set
    during the unwind (cooperative-cancellation semantics of the recursion).

    ``ticker`` is an optional :class:`repro.obs.progress.ProgressTicker`:
    ``ticker.on_branch(depth)`` is called once per expansion (an increment
    plus a modulo until its period elapses) and a True return requests the
    same cooperative unwind as ``should_stop``.

    ``scheduler`` is an optional work-stealing scheduler (see
    :mod:`repro.extensions.stealing`): ``scheduler.begin_task(steal, close,
    root_frame)`` is called once before the loop and ``scheduler.on_branch()``
    once per expansion.  The scheduler may call ``steal()`` to remove the
    bottom-most pending subtree for another worker and must later contribute
    that subtree's verdict via :func:`contribute_steal_result`.  With a
    scheduler the return value may be None: the local stack drained but the
    root still awaits stolen subtrees (the root frame's ``on_resolve`` fires
    when it finally resolves).  With ``scheduler=None`` (the default) this is
    the original allocation-free loop, unchanged.
    """
    # Both hooks fold into one prebuilt ``poll``, so the common disabled case
    # pays exactly one is-None check per branch — the same instruction count
    # as the loop had before progress hooks existed.
    if ticker is None:
        poll = None if should_stop is None else lambda depth: should_stop()
    elif should_stop is None:
        poll = ticker.on_branch
    else:
        def poll(depth, _tick=ticker.on_branch):
            return should_stop() or _tick(depth)
    if scheduler is not None:
        return _enumerate_with_scheduler(root, expand, close, scheduler, poll)
    stack: list[tuple[bool, object]] = [(False, root)]
    found: list[bool] = [False]
    while stack:
        closing, payload = stack.pop()
        if closing:
            sub_found = found.pop()
            if close(payload, sub_found):
                sub_found = True
            if sub_found:
                found[-1] = True
            continue
        if poll is not None and poll(len(stack)):
            return True
        outcome = expand(payload)
        if isinstance(outcome, bool):
            if outcome:
                found[-1] = True
            continue
        children, close_payload = outcome
        stack.append((True, close_payload))
        found.append(False)
        for child in reversed(children):
            stack.append((False, child))
    return found[0]
