"""Incremental branch-state kernel: O(deg) degree ledgers for the enumeration core.

The reference implementation (:mod:`repro.core.branch`,
:mod:`repro.core.refinement`, :mod:`repro.core.branching`) recomputes every
branch quantity — ``sigma(B)``, ``Delta(S)``, ``Delta(S ∪ C)``, both
refinement rules, the T1/T2 termination conditions and the pivot scores —
from scratch with per-vertex popcounts over full-graph-width bitmasks, even
though a child branch differs from its parent by exactly one vertex.

This module replaces those popcounts with an incremental :class:`BranchState`:

* per-vertex ledgers ``deg_in_s[v] = delta(v, S)`` and
  ``deg_in_union[v] = delta(v, S ∪ C)``, updated in ``O(deg(v))`` via the
  graph's adjacency sets whenever a vertex moves between S, C and X
  (excluded/removed);
* every derived quantity then falls out of the identities
  ``delta_bar(v, S) = |S| - deg_in_s[v]`` and
  ``delta_bar(v, S ∪ C) = |S ∪ C| - deg_in_union[v]``, so the condition
  C1&2 check, Refinement Rules 1–2, T1/T2 and pivot selection become plain
  ``O(|S|)`` / ``O(|C|)`` integer-array scans with no popcounts at all.

The functions mirror their reference counterparts one-to-one and visit the
exact same branch tree (same refinement fixpoints, same pivot tie-breaks,
same child ordering), so the kernelized enumerators are differentially
testable against the mask-based implementations branch for branch.

The module also provides :func:`depth_first_enumerate`, the explicit
work-stack driver shared by FastQC and Quick+: it performs the same
post-order traversal as the old recursion (children first, then the
``G[S]`` fallback output decision) without consuming Python stack frames,
which removes the ``sys.setrecursionlimit`` manipulation from the
enumeration entry points.
"""

from __future__ import annotations

from collections.abc import Callable

from ..graph.graph import Graph, iter_bits
from ..quasiclique.definitions import gamma_fraction
from .branch import Branch
from .branching import PivotInfo, hybrid_se_applicable, pivot_ordering_masks
from .stats import SearchStatistics


class BranchState:
    """A branch ``(S, C, D)`` carrying incremental degree ledgers.

    The masks mirror :class:`repro.core.branch.Branch` (same index space, same
    invariants); on top of them the state maintains, for **every** vertex of
    the graph, ``deg_in_s[v]`` and ``deg_in_union[v]`` — the number of
    neighbours of ``v`` inside ``S`` and inside ``S ∪ C``.  Ledger entries of
    vertices outside ``S ∪ C`` are kept up to date too (the updates are
    symmetric), but never read.

    States are mutable; :meth:`copy` is an O(n) pointer copy used when a
    branch forks into children, after which each single-vertex move costs
    ``O(deg(v))``.
    """

    __slots__ = ("graph", "stats", "s_mask", "c_mask", "d_mask",
                 "s_size", "c_size", "deg_in_s", "deg_in_union")

    def __init__(self, graph: Graph, stats: SearchStatistics | None,
                 s_mask: int, c_mask: int, d_mask: int,
                 s_size: int, c_size: int,
                 deg_in_s: list[int], deg_in_union: list[int]) -> None:
        self.graph = graph
        self.stats = stats
        self.s_mask = s_mask
        self.c_mask = c_mask
        self.d_mask = d_mask
        self.s_size = s_size
        self.c_size = c_size
        self.deg_in_s = deg_in_s
        self.deg_in_union = deg_in_union

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_branch(cls, graph: Graph, branch: Branch,
                    stats: SearchStatistics | None = None) -> "BranchState":
        """Build the ledgers for an arbitrary branch (one full scan, then O(deg))."""
        n = graph.vertex_count
        deg_in_s = [0] * n
        deg_in_union = [0] * n
        s_mask = branch.s_mask
        union = branch.union_mask
        masks = graph.adjacency_masks()
        for v in iter_bits(union):
            adjacency = masks[v]
            deg_in_union[v] = (adjacency & union).bit_count()
            if s_mask:
                deg_in_s[v] = (adjacency & s_mask).bit_count()
        return cls(graph, stats, s_mask, branch.c_mask, branch.d_mask,
                   branch.partial_size, branch.candidate_size,
                   deg_in_s, deg_in_union)

    def copy(self) -> "BranchState":
        """Fork the state (ledger lists are copied, the graph is shared)."""
        return BranchState(self.graph, self.stats, self.s_mask, self.c_mask,
                          self.d_mask, self.s_size, self.c_size,
                          list(self.deg_in_s), list(self.deg_in_union))

    def to_branch(self) -> Branch:
        """The immutable mask view (reference interop, tests, diagnostics)."""
        return Branch(self.s_mask, self.c_mask, self.d_mask)

    # ------------------------------------------------------------------
    # O(deg) vertex moves
    # ------------------------------------------------------------------
    def include(self, vertex: int) -> None:
        """Move a candidate into S: only ``deg_in_s`` of its neighbours changes."""
        bit = 1 << vertex
        self.s_mask |= bit
        self.c_mask &= ~bit
        self.s_size += 1
        self.c_size -= 1
        deg_in_s = self.deg_in_s
        neighbours = self.graph.adjacency_set(vertex)
        for u in neighbours:
            deg_in_s[u] += 1
        stats = self.stats
        if stats is not None:
            stats.ledger_moves += 1
            stats.ledger_updates += len(neighbours)

    def remove(self, vertex: int, exclude: bool = False) -> None:
        """Drop a candidate from the union (to D when ``exclude``, else to X).

        Only ``deg_in_union`` of its neighbours changes; ``deg_in_s`` is
        untouched because the vertex was not in S.
        """
        bit = 1 << vertex
        self.c_mask &= ~bit
        self.c_size -= 1
        if exclude:
            self.d_mask |= bit
        deg_in_union = self.deg_in_union
        neighbours = self.graph.adjacency_set(vertex)
        for u in neighbours:
            deg_in_union[u] -= 1
        stats = self.stats
        if stats is not None:
            stats.ledger_moves += 1
            stats.ledger_updates += len(neighbours)

    # ------------------------------------------------------------------
    # Derived views (used by tests and the emit path)
    # ------------------------------------------------------------------
    @property
    def union_mask(self) -> int:
        return self.s_mask | self.c_mask

    @property
    def union_size(self) -> int:
        return self.s_size + self.c_size


# ----------------------------------------------------------------------
# Kernelized refinement (mirrors repro.core.refinement.progressively_refine)
# ----------------------------------------------------------------------
def refine_state(state: BranchState, gamma: float, theta: int,
                 max_rounds: int | None = None
                 ) -> tuple[bool, int, int, int, int]:
    """Refine a branch state in place until the C1&2 / Rules 1–2 fixpoint.

    Returns ``(pruned, tau_value, rounds, removed_by_rule1, removed_by_rule2)``
    with exactly the semantics of
    :func:`repro.core.refinement.progressively_refine`: same prune decisions,
    same surviving candidate set, same final disconnection budget.  All checks
    are O(|S|) / O(|C|) ledger scans; each removal costs O(deg).

    ``sigma(B)`` and ``tau(sigma(B))`` are evaluated in exact integer
    arithmetic over ``gamma = p/q`` instead of :class:`fractions.Fraction`
    objects: with ``sigma = num/den``, ``tau(sigma) = ((q-p)*num + p*den) //
    (q*den)`` — same values, no rational-number allocations in the hot loop.
    """
    gamma_exact = gamma_fraction(gamma)
    p = gamma_exact.numerator
    q = gamma_exact.denominator
    removed_rule1 = 0
    removed_rule2 = 0
    rounds = 0
    deg_in_s = state.deg_in_s
    deg_in_union = state.deg_in_union
    masks = state.graph.adjacency_masks()
    while True:
        rounds += 1
        s_size = state.s_size
        union_size = s_size + state.c_size
        if s_size == 0:
            sigma_num, sigma_den = union_size, 1
            delta_s = 0
        else:
            min_deg_s = s_size
            min_deg_u = union_size
            for v in iter_bits(state.s_mask):
                ds = deg_in_s[v]
                if ds < min_deg_s:
                    min_deg_s = ds
                du = deg_in_union[v]
                if du < min_deg_u:
                    min_deg_u = du
            delta_s = s_size - min_deg_s
            # sigma = min(|S ∪ C|, d_min/gamma + 1): compare via cross products.
            alt_num = min_deg_u * q + p        # (d_min*q + p) / p
            if union_size * p <= alt_num:
                sigma_num, sigma_den = union_size, 1
            else:
                sigma_num, sigma_den = alt_num, p
        tau_value = ((q - p) * sigma_num + p * sigma_den) // (q * sigma_den)
        if sigma_num < s_size * sigma_den or delta_s > tau_value:
            return True, tau_value, rounds, removed_rule1, removed_rule2

        # Rule 1: v ∈ C falls when delta_bar(v, S) + 1 > tau, or when some
        # u ∈ S already sitting at the budget is not adjacent to v.
        critical_mask = 0
        if s_size:
            for u in iter_bits(state.s_mask):
                if s_size - deg_in_s[u] >= tau_value:
                    critical_mask |= 1 << u
        removals = []
        for v in iter_bits(state.c_mask):
            if s_size - deg_in_s[v] + 1 > tau_value or (critical_mask & ~masks[v]):
                removals.append(v)
        removed_rule1 += len(removals)
        for v in removals:
            state.remove(v)

        # Rule 2: v ∈ C falls when delta(v, S ∪ C) < theta - tau (the union —
        # hence the ledger — already reflects the Rule 1 removals).
        removed_this_round = len(removals)
        required = theta - tau_value
        if required > 0:
            removals = [v for v in iter_bits(state.c_mask)
                        if deg_in_union[v] < required]
            removed_rule2 += len(removals)
            removed_this_round += len(removals)
            for v in removals:
                state.remove(v)

        if removed_this_round == 0:
            return False, tau_value, rounds, removed_rule1, removed_rule2
        if max_rounds is not None and rounds >= max_rounds:
            s_size = state.s_size
            union_size = s_size + state.c_size
            if s_size == 0:
                sigma_num, sigma_den = union_size, 1
                delta_s = 0
            else:
                min_deg_s = min(deg_in_s[v] for v in iter_bits(state.s_mask))
                min_deg_u = min(deg_in_union[v] for v in iter_bits(state.s_mask))
                delta_s = s_size - min_deg_s
                alt_num = min_deg_u * q + p
                if union_size * p <= alt_num:
                    sigma_num, sigma_den = union_size, 1
                else:
                    sigma_num, sigma_den = alt_num, p
            tau_value = ((q - p) * sigma_num + p * sigma_den) // (q * sigma_den)
            pruned = sigma_num < s_size * sigma_den or delta_s > tau_value
            return pruned, tau_value, rounds, removed_rule1, removed_rule2


# ----------------------------------------------------------------------
# Kernelized termination and pivoting
# ----------------------------------------------------------------------
def union_min_degree(state: BranchState) -> tuple[int, int]:
    """Return ``(min deg_in_union over S ∪ C, first argmin)`` in one O(|S ∪ C|) scan.

    ``Delta(S ∪ C) = |S ∪ C| - min``, and the argmin (lowest index among the
    minima) is exactly the pivot the reference
    :func:`repro.core.branching.select_pivot` picks, because it scans in
    increasing index order and only replaces on strictly more disconnections.
    """
    deg_in_union = state.deg_in_union
    best = state.s_size + state.c_size + 1
    best_vertex = -1
    for v in iter_bits(state.s_mask | state.c_mask):
        d = deg_in_union[v]
        if d < best:
            best = d
            best_vertex = v
    return best, best_vertex


def terminates_by_theta_state(state: BranchState, theta: int, tau_value: int) -> bool:
    """Ledger form of termination condition T2 (Section 4.5)."""
    union_size = state.s_size + state.c_size
    if union_size < theta:
        return True
    required = theta - tau_value
    if required <= 0:
        return False
    deg_in_union = state.deg_in_union
    for v in iter_bits(state.s_mask):
        if deg_in_union[v] < required:
            return True
    return False


def pivot_from_state(state: BranchState, vertex: int, tau_value: int) -> PivotInfo:
    """Build the :class:`PivotInfo` of a pivot vertex from the ledgers alone."""
    s_size = state.s_size
    union_size = s_size + state.c_size
    deg_s = state.deg_in_s[vertex]
    deg_u = state.deg_in_union[vertex]
    return PivotInfo(
        vertex=vertex,
        in_partial=bool(state.s_mask >> vertex & 1),
        disconnections_in_partial=s_size - deg_s,
        disconnections_in_candidates=state.c_size - (deg_u - deg_s),
        disconnections_in_union=union_size - deg_u,
        budget=tau_value,
    )


def pivot_ordering_state(state: BranchState, pivot: PivotInfo) -> list[int]:
    """The candidate ordering induced by the pivot (Equations 15 and 16)."""
    return pivot_ordering_masks(state.graph.adjacency_mask(pivot.vertex),
                                state.c_mask, pivot)


# ----------------------------------------------------------------------
# Kernelized branch generation (mirrors repro.core.branching)
# ----------------------------------------------------------------------
def se_children(state: BranchState, ordering: list[int],
                keep: int | None = None, skip: int = 0) -> list[BranchState]:
    """SE children over ``ordering``: child ``i`` includes ``v_i``, excludes priors."""
    limit = len(ordering) if keep is None else min(keep, len(ordering))
    children = []
    running = state.copy()
    for position in range(limit):
        vertex = ordering[position]
        if position >= skip:
            child = running.copy()
            child.include(vertex)
            children.append(child)
        running.remove(vertex, exclude=True)
    return children


def sym_se_children(state: BranchState, ordering: list[int],
                    keep: int | None = None, skip: int = 0) -> list[BranchState]:
    """Sym-SE children: child ``i`` includes ``v_1..v_{i-1}``, excludes ``v_i``."""
    total = len(ordering) + 1
    limit = total if keep is None else min(keep, total)
    children = []
    running = state.copy()
    for position in range(limit):
        if position < len(ordering):
            vertex = ordering[position]
            if position >= skip:
                child = running.copy()
                child.remove(vertex, exclude=True)
                children.append(child)
            running.include(vertex)
        elif position >= skip:
            # The |C|+1-th branch includes the whole candidate set; the running
            # state already did exactly that, so it is the child itself.
            children.append(running)
    return children


def generate_child_states(state: BranchState, pivot: PivotInfo,
                          method: str) -> list[BranchState]:
    """Ledger counterpart of :func:`repro.core.branching.generate_branches`."""
    ordering = pivot_ordering_state(state, pivot)
    if method == "se":
        return se_children(state, ordering)
    sym_keep = max(1, pivot.a + 1)
    if method == "sym-se":
        return sym_se_children(state, ordering, keep=sym_keep)
    if method == "hybrid":
        if hybrid_se_applicable(pivot):
            excluding = se_children(state, ordering, keep=pivot.b, skip=1)
            including = sym_se_children(state, ordering, keep=pivot.a + 1, skip=1)
            return excluding + including
        return sym_se_children(state, ordering, keep=sym_keep)
    raise ValueError(f"unknown branching method {method!r}")


# ----------------------------------------------------------------------
# Explicit work-stack driver (replaces the recursive search)
# ----------------------------------------------------------------------
#: Values the enumerators accept for their ``kernel`` knob.
KERNELS = ("ledger", "reference")


def depth_first_enumerate(root, expand: Callable, close: Callable,
                          should_stop: Callable[[], bool] | None = None) -> bool:
    """Post-order depth-first search over branches with an explicit work stack.

    ``expand(branch)`` is called once per visited branch and returns either a
    ``bool`` (the branch terminated: pruned, T1/T2, or emitted) or a tuple
    ``(children, payload)``; after every child's subtree completes,
    ``close(payload, found_in_subtree)`` decides the branch's own result (the
    ``G[S]`` fallback output of Algorithms 1–2).  The return value is True iff
    a quasi-clique was output anywhere in the tree — identical to the old
    recursion, but with O(depth) heap frames instead of Python stack frames.

    ``should_stop`` is polled before each expansion; when it fires the search
    abandons the stack and reports True so no ancestor emits its partial set
    during the unwind (cooperative-cancellation semantics of the recursion).
    """
    stack: list[tuple[bool, object]] = [(False, root)]
    found: list[bool] = [False]
    while stack:
        closing, payload = stack.pop()
        if closing:
            sub_found = found.pop()
            if close(payload, sub_found):
                sub_found = True
            if sub_found:
                found[-1] = True
            continue
        if should_stop is not None and should_stop():
            return True
        outcome = expand(payload)
        if isinstance(outcome, bool):
            if outcome:
                found[-1] = True
            continue
        children, close_payload = outcome
        stack.append((True, close_payload))
        found.append(False)
        for child in reversed(children):
            stack.append((False, child))
    return found[0]
