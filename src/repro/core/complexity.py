"""Theoretical complexity helpers (Theorem 1 and the DCFastQC analysis).

FastQC runs in ``O(n * d * alpha_k^n)`` time where ``alpha_k`` is the largest
real root of ``x^(k+2) - x^(k+1) - 2 x^k + 2 = 0`` and
``k = tau(n)`` bounds the disconnection budget of any branch.  DCFastQC runs in
``O(n * omega * d^2 * alpha_k^(omega * d))`` with
``k = floor(omega * (1 - gamma) / gamma + 1)``.

These helpers compute ``alpha_k`` numerically and evaluate the (astronomically
large) worst-case bounds, mainly so the experiment reports can show the
theoretical gap between FastQC and the ``O*(2^n)`` of Quick+.
"""

from __future__ import annotations

import math
from fractions import Fraction


def characteristic_polynomial(x: float, k: int) -> float:
    """Evaluate ``x^(k+2) - x^(k+1) - 2 x^k + 2`` (the recurrence of Theorem 1)."""
    return x ** (k + 2) - x ** (k + 1) - 2.0 * x ** k + 2.0


def branching_factor(k: int, tolerance: float = 1e-12) -> float:
    """Return ``alpha_k``: the largest real root of the characteristic polynomial.

    ``x = 1`` is always a root; the relevant root lies strictly between 1 and 2
    for every ``k >= 1`` (e.g. ``alpha_1 = 1.445``, ``alpha_2 = 1.769``,
    ``alpha_3 = 1.899``, ``alpha_4 = 1.953``) and approaches 2 as ``k`` grows.
    Found by bisection on the sign change closest to 2.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    # Note: for k = 1 the polynomial factors as (x - 1)(x^2 - 2), giving
    # alpha_1 = sqrt(2) ~= 1.415; the paper quotes the slightly larger 1.445
    # obtained from its refined k = 1 analysis, so this helper is (safely)
    # tighter there and identical for every k >= 2.
    # The polynomial is positive at 2 (value 2) and negative just below the
    # sought root; scan downwards from 2 for the first sign change.
    upper = 2.0
    step = 1e-3
    lower = upper - step
    while lower > 1.0 and characteristic_polynomial(lower, k) > 0.0:
        upper = lower
        lower -= step
    if lower <= 1.0:
        # No sign change found above 1: the root is 1 itself (never happens for k >= 1,
        # kept for robustness).
        return 1.0
    while upper - lower > tolerance:
        middle = (lower + upper) / 2.0
        if characteristic_polynomial(middle, k) > 0.0:
            upper = middle
        else:
            lower = middle
    return (lower + upper) / 2.0


def fastqc_budget_bound(vertex_count: int, gamma: float) -> int:
    """Return ``k = tau(n)``, the bound on any branch's disconnection budget."""
    from ..quasiclique.definitions import gamma_fraction

    gamma_exact = gamma_fraction(gamma)
    return max(1, math.floor((1 - gamma_exact) * vertex_count + gamma_exact))


def dcfastqc_budget_bound(degeneracy_value: int, max_degree: int, gamma: float) -> int:
    """Return ``k = min(floor(omega*d*(1-gamma)+gamma), floor(omega*(1-gamma)/gamma + 1))``.

    This is the budget bound stated in Section 6 for the DC framework (the
    subgraphs have at most ``omega * d`` vertices and every QC has size at most
    ``2 * omega + 1``).
    """
    from ..quasiclique.definitions import gamma_fraction

    if degeneracy_value <= 0:
        return 1
    gamma_exact = gamma_fraction(gamma)
    by_size = math.floor(Fraction(degeneracy_value * max_degree) * (1 - gamma_exact) + gamma_exact)
    by_core = math.floor(Fraction(degeneracy_value) * (1 - gamma_exact) / gamma_exact + 1)
    return max(1, min(by_size, by_core))


def fastqc_worst_case_log2(vertex_count: int, max_degree: int, gamma: float) -> float:
    """Return ``log2`` of the FastQC bound ``n * d * alpha_k^n`` (Theorem 1)."""
    if vertex_count == 0:
        return 0.0
    k = fastqc_budget_bound(vertex_count, gamma)
    alpha = branching_factor(k)
    polynomial = max(1, vertex_count * max(1, max_degree))
    return math.log2(polynomial) + vertex_count * math.log2(alpha)


def quickplus_worst_case_log2(vertex_count: int, max_degree: int) -> float:
    """Return ``log2`` of the Quick+ bound ``n * d * 2^n``."""
    if vertex_count == 0:
        return 0.0
    polynomial = max(1, vertex_count * max(1, max_degree))
    return math.log2(polynomial) + vertex_count


def dcfastqc_worst_case_log2(vertex_count: int, max_degree: int, degeneracy_value: int,
                             gamma: float) -> float:
    """Return ``log2`` of the DCFastQC bound ``n * omega * d^2 * alpha_k^(omega*d)``."""
    if vertex_count == 0:
        return 0.0
    k = dcfastqc_budget_bound(degeneracy_value, max_degree, gamma)
    alpha = branching_factor(k)
    polynomial = max(1, vertex_count * max(1, degeneracy_value) * max(1, max_degree) ** 2)
    return math.log2(polynomial) + degeneracy_value * max_degree * math.log2(alpha)
