"""Command-line interface: ``repro-mqce`` / ``python -m repro``.

Sub-commands
------------
``query``      The unified declarative query command: build a
               :class:`repro.api.QuerySpec` from flags or a JSON file
               (``--spec``), run it through the persistent engine, optionally
               streaming each maximal quasi-clique as it is confirmed
               (``--stream``).  Covers enumerate / top-k (``--top``) /
               containment (``--containing``) / count (``--count``) with
               budgets (``--limit``, ``--time-limit``).
``enumerate``  Run the full MQCE pipeline on an edge-list file or a registered
               dataset analogue and print (or save) the maximal quasi-cliques.
``topk``       Find the k largest maximal quasi-cliques (exact or kernel expansion).
``community``  Find the maximal quasi-cliques containing given query vertices.
``stats``      Print graph statistics (the input columns of Table 1).
``ingest``     Stream an edge-list file into the CSR large-graph backend
               (O(V+E) memory, no per-vertex dict/bitmask), report size,
               density and peak RSS, and optionally answer one budgeted
               enumerate query on the ingested graph.
``datasets``   List the registered dataset analogues and their defaults.
``table1``     Regenerate the Table 1 rows on the dataset analogues.
``figure``     Regenerate one of the paper's figures (7, 8, 9, 10, 11, 12).
``engine``     The persistent query engine: ``engine query`` (one cached MQCE
               query, optionally repeated), ``engine batch`` (a gamma x theta
               grid through one engine), ``engine explain`` (print the chosen
               plan without enumerating) and ``engine stats`` (prepared-graph
               artifacts and timings).
``dynamic``    Dynamic graph updates with incremental engine maintenance:
               ``dynamic apply`` (run an update script against a graph and
               write/report the result), ``dynamic query`` (query, apply the
               updates incrementally, query again — reporting which cache
               entries survived) and ``dynamic stats`` (patch counters, core
               drift and invalidation statistics after the updates).
``serve``      Boot the long-lived query service: named graphs behind the
               line-delimited JSON protocol with single-flight coalescing,
               admission control, in-band mutations and a single-port HTTP
               shim for ``GET /metrics`` scrapes (see :mod:`repro.serve`).
``client``     Talk to a running server: run a query (``--query``/``--spec``),
               apply a mutation script (``--mutate``), or hit the control
               operations (``--stats``, ``--graphs``, ``--ping``, ``--flush``,
               ``--shutdown``).
``worker``     Pull-based fan-out worker: claim compact DC subproblem payloads
               from a file-backed spool queue (``--spool DIR``), enumerate
               them, and publish candidate batches for the coordinator.

Errors derived from :class:`repro.errors.ReproError` (bad parameters, invalid
specs, unsatisfiable queries) exit with code 2 and a one-line message instead
of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .api import QuerySpec
from .api.execute import containment_search, topk_search
from .api.spec import SPEC_PARALLEL_MODES
from .core.dcfastqc import DC_FRAMEWORKS
from .core.kernel import KERNELS
from .datasets.registry import REGISTRY, get_spec, load_dataset, load_prepared
from .dynamic import DynamicEngine, read_update_script
from .engine import MQCEEngine, QueryRequest, prepare_graph
from .errors import ReproError, SpecError
from .experiments import figures as figure_module
from .experiments.harness import format_table
from .experiments.tables import table1_rows
from .extensions.topk import kernel_expansion_top_k
from .graph.io import read_edge_list, write_edge_list, write_quasi_cliques
from .graph.statistics import graph_statistics
from .pipeline.mqce import ALGORITHMS, run_enumeration


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(args.dataset)
    if args.input:
        return read_edge_list(args.input)
    raise SystemExit("either --input FILE or --dataset NAME is required")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", "-i", help="edge-list file to read")
    parser.add_argument("--dataset", "-d", help="registered dataset analogue to build")


def _command_enumerate(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    gamma = args.gamma
    theta = args.theta
    if args.dataset and gamma is None:
        gamma = get_spec(args.dataset).default_gamma
    if args.dataset and theta is None:
        theta = get_spec(args.dataset).default_theta
    if gamma is None or theta is None:
        raise SystemExit("--gamma and --theta are required for --input graphs")
    result = run_enumeration(graph, QuerySpec(gamma=gamma, theta=theta,
                                              algorithm=args.algorithm))
    if args.json:
        print(json.dumps(result.summary(), indent=2))
    else:
        print(f"# {result.maximal_count} maximal {gamma}-quasi-cliques with >= {theta} vertices "
              f"({result.algorithm}, {result.total_seconds:.3f}s)")
        for clique in result.maximal_quasi_cliques:
            print(" ".join(str(v) for v in sorted(clique, key=str)))
    if args.output:
        write_quasi_cliques(result.maximal_quasi_cliques, args.output)
    return 0


def _resolve_defaults(args: argparse.Namespace) -> tuple[float, int | None]:
    """Fill gamma/theta from the dataset defaults when they were not given."""
    gamma = args.gamma
    theta = getattr(args, "theta", None)
    if args.dataset:
        spec = get_spec(args.dataset)
        if gamma is None:
            gamma = spec.default_gamma
        if theta is None:
            theta = spec.default_theta
    return gamma, theta


def _command_topk(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    gamma, _ = _resolve_defaults(args)
    if gamma is None:
        raise SystemExit("--gamma is required for --input graphs")
    if args.heuristic:
        cliques = kernel_expansion_top_k(graph, gamma, k=args.k,
                                         kernel_theta=max(2, args.min_size))
    else:
        spec = QuerySpec(gamma=gamma, theta=max(1, args.min_size), k=args.k,
                         algorithm="dcfastqc")
        cliques = topk_search(graph, spec).maximal_quasi_cliques
    method = "kernel expansion" if args.heuristic else "exact"
    print(f"# top-{args.k} largest {gamma}-quasi-cliques ({method})")
    for rank, clique in enumerate(cliques, start=1):
        print(f"{rank}. size {len(clique)}: "
              + " ".join(str(v) for v in sorted(clique, key=str)))
    return 0


def _command_community(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    gamma, theta = _resolve_defaults(args)
    if gamma is None or theta is None:
        raise SystemExit("--gamma and --theta are required for --input graphs")
    query = [_int_if_possible(token) for token in args.vertices]
    spec = QuerySpec(gamma=gamma, theta=theta, contains=tuple(query))
    cliques = containment_search(graph, spec).maximal_quasi_cliques
    print(f"# {len(cliques)} maximal {gamma}-quasi-cliques (size >= {theta}) "
          f"containing {', '.join(map(str, query))}")
    for clique in cliques:
        print(" ".join(str(v) for v in sorted(clique, key=str)))
    return 0


def _int_if_possible(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _command_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = graph_statistics(graph)
    print(json.dumps(stats.as_dict(), indent=2))
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from .graph.io import ingest_edge_list, read_edge_list
    from .obs.process import current_rss_bytes, peak_rss_bytes

    # The baseline is taken after imports so the RSS deltas reported by the
    # large-graph benchmark isolate the graph representation + query, not the
    # interpreter start-up cost.  numpy (used only to accelerate the CSR
    # build, ~15 MB of RSS on import) is pulled in up front so both backends
    # start from the same baseline.
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    baseline_rss = current_rss_bytes()
    start = time.perf_counter()
    if args.backend == "dict":
        graph = read_edge_list(args.input, as_int=not args.string_labels,
                               directed_duplicates_ok=not args.reject_duplicates)
    else:
        graph = ingest_edge_list(args.input, as_int=not args.string_labels,
                                 directed_duplicates_ok=not args.reject_duplicates)
    ingest_seconds = time.perf_counter() - start
    report = {
        "input": args.input,
        "backend": args.backend,
        "vertices": graph.vertex_count,
        "edges": graph.edge_count,
        "density": round(graph.density(), 4),
        "max_degree": graph.max_degree(),
        "ingest_seconds": round(ingest_seconds, 4),
        "baseline_rss_bytes": baseline_rss,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if args.gamma is not None or args.theta is not None:
        if args.gamma is None or args.theta is None:
            raise SystemExit("--gamma and --theta must be given together")
        result = run_enumeration(graph, QuerySpec(
            gamma=args.gamma, theta=args.theta, time_limit=args.time_limit,
            max_results=args.limit))
        report.update({
            "gamma": args.gamma,
            "theta": args.theta,
            "maximal": result.maximal_count,
            "truncated": result.truncated,
            "enumeration_seconds": round(result.total_seconds, 4),
        })
        report["peak_rss_bytes"] = peak_rss_bytes()
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"# ingested {report['vertices']} vertices / {report['edges']} edges "
              f"({report['backend']}, {report['ingest_seconds']}s, "
              f"peak RSS {report['peak_rss_bytes'] / 1e6:.1f} MB)")
        if "maximal" in report:
            budget = " (truncated)" if report["truncated"] else ""
            print(f"# {report['maximal']} maximal {args.gamma}-quasi-cliques "
                  f"with >= {args.theta} vertices in "
                  f"{report['enumeration_seconds']}s{budget}")
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    rows = []
    for spec in REGISTRY.values():
        rows.append({
            "name": spec.name,
            "description": spec.description,
            "vertices": spec.vertices,
            "gamma_default": spec.default_gamma,
            "theta_default": spec.default_theta,
            "paper_vertices": spec.paper.vertices,
        })
    print(format_table(rows))
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    names = args.names or None
    rows = table1_rows(names=names, include_quickplus=not args.skip_quickplus)
    print(format_table(rows))
    return 0


_FIGURE_DISPATCH = {
    "7": lambda: figure_module.figure7_rows(),
    "8": lambda: figure_module.figure8_rows(),
    "9": lambda: figure_module.figure9_rows(),
    "10a": lambda: figure_module.figure10a_rows(),
    "10b": lambda: figure_module.figure10b_rows(),
    "11": lambda: figure_module.figure11_rows(),
    "12": lambda: figure_module.figure12_rows(),
}


def _command_figure(args: argparse.Namespace) -> int:
    rows = _FIGURE_DISPATCH[args.figure]()
    print(format_table(rows))
    return 0


# ----------------------------------------------------------------------
# The unified `query` command (QuerySpec API)
# ----------------------------------------------------------------------
def _build_query_spec(args: argparse.Namespace) -> QuerySpec:
    """Assemble a QuerySpec from ``--spec FILE`` plus flag overrides."""
    fields: dict = {}
    if args.spec:
        try:
            text = Path(args.spec).read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read spec file {args.spec}: {exc}") from exc
        try:
            fields = QuerySpec.fields_from_json(text)
        except SpecError as exc:
            raise SpecError(f"spec file {args.spec}: {exc}") from exc
    # Precedence: explicit flags > --spec file > dataset defaults.
    if args.gamma is not None:
        fields["gamma"] = args.gamma
    if args.theta is not None:
        fields["theta"] = args.theta
    if args.dataset:
        dataset = get_spec(args.dataset)
        fields.setdefault("gamma", dataset.default_gamma)
        fields.setdefault("theta", dataset.default_theta)
    if args.algorithm is not None:
        fields["algorithm"] = args.algorithm
    if args.branching is not None:
        fields["branching"] = args.branching
    if args.framework is not None:
        fields["framework"] = args.framework
    if getattr(args, "kernel", None) is not None:
        fields["kernel"] = args.kernel
    if args.max_rounds is not None:
        fields["max_rounds"] = args.max_rounds
    if getattr(args, "parallel", None) is not None:
        fields["parallel"] = args.parallel
    if args.containing:
        fields["contains"] = tuple(_int_if_possible(token) for token in args.containing)
    if args.top is not None:
        fields["k"] = args.top
    if args.count:
        fields["count_only"] = True
    if args.limit is not None:
        fields["max_results"] = args.limit
    if args.time_limit is not None:
        fields["time_limit"] = args.time_limit
    if args.no_candidates:
        fields["include_candidates"] = False
    if "gamma" not in fields:
        raise SystemExit("--gamma (or a --spec file with gamma, or a dataset "
                         "with defaults) is required")
    return QuerySpec.from_dict(fields)


def _print_clique(clique: frozenset, stream=None) -> None:
    print(" ".join(str(v) for v in sorted(clique, key=str)),
          file=stream or sys.stdout, flush=True)


def _observability(args: argparse.Namespace):
    """Build the (tracer, progress) pair requested by --trace / --progress-every."""
    tracer = None
    if getattr(args, "trace", None):
        from .obs import Tracer
        tracer = Tracer()
    progress = None
    if getattr(args, "progress_every", None):
        from .obs import heartbeat
        progress = heartbeat(every=args.progress_every)
    return tracer, progress


def _write_trace(tracer, args: argparse.Namespace) -> None:
    if tracer is None:
        return
    tracer.write(args.trace, format="chrome")
    print(f"# trace written to {args.trace} "
          f"({tracer.coverage():.0%} of {tracer.window_seconds():.3f}s traced)",
          file=sys.stderr)


def _command_query(args: argparse.Namespace) -> int:
    prepared = _load_prepared(args)
    spec = _build_query_spec(args)
    engine = MQCEEngine(workers=getattr(args, "workers", None))
    if args.explain:
        plan = engine.explain(prepared, spec)
        if args.json:
            print(json.dumps({"spec": spec.to_dict(), "plan": plan.as_dict()}, indent=2))
        else:
            print(plan.describe())
        return 0
    tracer, progress = _observability(args)
    if args.stream:
        stream = engine.stream(prepared, spec, trace=tracer, progress=progress)
        delivered: list[frozenset] = []
        for clique in stream:
            if args.json:
                # JSON-lines: one object per answer, as soon as it is confirmed.
                print(json.dumps({"clique": sorted(map(str, clique))}), flush=True)
            else:
                _print_clique(clique)
            delivered.append(clique)
        state = ("complete" if stream.finished
                 else "truncated by budget" if stream.truncated else "stopped")
        if args.json:
            print(json.dumps({"spec": spec.to_dict(), "delivered": len(delivered),
                              "state": state, "from_cache": stream.from_cache}))
        else:
            print(f"# {stream.delivered} maximal quasi-cliques streamed "
                  f"({spec.describe()}; {state}"
                  f"{'; served from cache' if stream.from_cache else ''})")
        if args.output:
            write_quasi_cliques(delivered, args.output)
        _write_trace(tracer, args)
        return 0
    result = engine.query(prepared, spec, trace=tracer, progress=progress)
    if args.json:
        payload = {"spec": spec.to_dict(), "result": result.summary(),
                   "plan": engine.explain(prepared, spec).as_dict()}
        if spec.count_only:
            payload["count"] = result.maximal_count
        print(json.dumps(payload, indent=2))
    elif spec.count_only:
        print(result.maximal_count)
    else:
        truncated = " (truncated by time limit)" if result.truncated else ""
        print(f"# {result.maximal_count} answers for {spec.describe()} "
              f"[{result.algorithm}]{truncated}")
        for clique in result.maximal_quasi_cliques:
            _print_clique(clique)
    if args.output:
        write_quasi_cliques(result.maximal_quasi_cliques, args.output)
    _write_trace(tracer, args)
    return 0


# ----------------------------------------------------------------------
# The `engine` sub-command group
# ----------------------------------------------------------------------
def _load_prepared(args: argparse.Namespace):
    """Load the graph as a named PreparedGraph (datasets keep their name)."""
    if args.dataset:
        return load_prepared(args.dataset)
    if args.input:
        return prepare_graph(read_edge_list(args.input), name=args.input)
    raise SystemExit("either --input FILE or --dataset NAME is required")


def _require_parameters(args: argparse.Namespace) -> tuple[float, int]:
    gamma, theta = _resolve_defaults(args)
    if gamma is None or theta is None:
        raise SystemExit("--gamma and --theta are required for --input graphs")
    return gamma, theta


def _command_engine_query(args: argparse.Namespace) -> int:
    prepared = _load_prepared(args)
    gamma, theta = _require_parameters(args)
    engine = MQCEEngine(workers=getattr(args, "workers", None))
    repeats = max(1, args.repeat)
    spec = QuerySpec(gamma=gamma, theta=theta, algorithm=args.algorithm,
                     branching=args.branching,
                     parallel=getattr(args, "parallel", None) or "auto")
    # Planned once here; the query loop reuses the memoized plan.
    plan = engine.explain(prepared, spec)
    result = None
    for _ in range(repeats):
        result = engine.query(prepared, spec)
    stats = engine.stats()
    if args.json:
        print(json.dumps({"result": result.summary(), "plan": plan.as_dict(),
                          "engine": stats}, indent=2))
    else:
        print(f"# {result.maximal_count} maximal {gamma}-quasi-cliques with >= {theta} "
              f"vertices ({plan.algorithm}, planned, {result.total_seconds:.3f}s "
              f"enumerated once)")
        for clique in result.maximal_quasi_cliques:
            print(" ".join(str(v) for v in sorted(clique, key=str)))
        cache = stats["cache"]
        print(f"# engine: {stats['queries']} queries, {cache['hits']} cache hits, "
              f"{cache['misses']} misses (hit rate {cache['hit_rate']:.0%})")
    if args.output:
        write_quasi_cliques(result.maximal_quasi_cliques, args.output)
    return 0


def _parse_float_list(text: str) -> list[float]:
    return [float(token) for token in text.split(",") if token.strip()]


def _parse_int_list(text: str) -> list[int]:
    return [int(token) for token in text.split(",") if token.strip()]


def _command_engine_batch(args: argparse.Namespace) -> int:
    prepared = _load_prepared(args)
    default_gamma, default_theta = _require_parameters(args)
    gammas = _parse_float_list(args.gammas) if args.gammas else [default_gamma]
    thetas = _parse_int_list(args.thetas) if args.thetas else [default_theta]
    requests = [QueryRequest(gamma, theta, algorithm=args.algorithm)
                for gamma in gammas for theta in thetas]
    engine = MQCEEngine()
    start = time.perf_counter()
    results = engine.query_batch(prepared, requests * max(1, args.repeat))
    elapsed = time.perf_counter() - start
    rows = []
    for request, result in zip(requests, results):
        rows.append({
            "gamma": request.gamma, "theta": request.theta,
            "algorithm": result.algorithm, "maximal": result.maximal_count,
            "seconds": round(result.total_seconds, 4),
        })
    stats = engine.stats()
    if args.json:
        print(json.dumps({"rows": rows, "engine": stats,
                          "wall_seconds": elapsed,
                          "queries_per_second": len(results) / elapsed if elapsed else 0.0},
                         indent=2))
    else:
        print(format_table(rows))
        cache = stats["cache"]
        print(f"# {len(results)} queries in {elapsed:.3f}s "
              f"({len(results) / elapsed:.1f} q/s), {cache['hits']} served from cache")
    return 0


def _command_engine_explain(args: argparse.Namespace) -> int:
    prepared = _load_prepared(args)
    gamma, theta = _require_parameters(args)
    spec = QuerySpec(gamma=gamma, theta=theta, algorithm=args.algorithm,
                     branching=args.branching,
                     parallel=getattr(args, "parallel", None) or "auto")
    engine = MQCEEngine(workers=getattr(args, "workers", None))
    plan = engine.explain(prepared, spec)
    if args.json:
        print(json.dumps(plan.as_dict(), indent=2))
    else:
        print(plan.describe())
    return 0


def _command_engine_stats(args: argparse.Namespace) -> int:
    prepared = _load_prepared(args).prepare()
    if getattr(args, "prometheus", False):
        # Touch the serving stack once so the page reflects this process's
        # query path (planner + cache + engine counters), then render the
        # whole registry in Prometheus text exposition format.
        gamma, theta = _resolve_defaults(args)
        if gamma is not None and theta is not None:
            MQCEEngine().query(prepared, gamma, theta)
        from .obs import render_prometheus
        sys.stdout.write(render_prometheus())
        return 0
    summary = prepared.summary()
    summary["preparation_seconds"] = {
        artifact: round(seconds, 6)
        for artifact, seconds in prepared.preparation_seconds.items()}
    print(json.dumps(summary, indent=2))
    return 0


# ----------------------------------------------------------------------
# The `dynamic` sub-command group (graph updates + incremental maintenance)
# ----------------------------------------------------------------------
def _load_dynamic(args: argparse.Namespace) -> DynamicEngine:
    name = get_spec(args.dataset).name if args.dataset else args.input
    return DynamicEngine(_load_graph(args), name=name)


def _report_lines(report) -> str:
    rebuilt = " (full rebuild: delta history exhausted)" if report.full_rebuild else ""
    return (f"# {report.mutations} mutations applied{rebuilt}: "
            f"+{report.added_edges}/-{report.removed_edges} edges, "
            f"+{report.added_vertices}/-{report.removed_vertices} vertices; "
            f"cache: {report.invalidated} invalidated, {report.retained} retained "
            f"({report.rekeyed} re-addressed), "
            f"fingerprint {report.old_fingerprint} -> {report.new_fingerprint}")


def _command_dynamic_apply(args: argparse.Namespace) -> int:
    dynamic = _load_dynamic(args)
    updates = read_update_script(args.updates)
    report = dynamic.apply(updates)
    graph = dynamic.graph
    if args.output:
        write_edge_list(graph, args.output)
    if args.json:
        payload = {"report": report.as_dict(),
                   "graph": {"vertices": graph.vertex_count,
                             "edges": graph.edge_count,
                             "version": graph.version}}
        print(json.dumps(payload, indent=2))
    else:
        print(_report_lines(report))
        print(f"# graph now |V|={graph.vertex_count}, |E|={graph.edge_count}, "
              f"version {graph.version}")
    return 0


def _command_dynamic_query(args: argparse.Namespace) -> int:
    dynamic = _load_dynamic(args)
    gamma, theta = _require_parameters(args)
    before = None
    if args.before:
        before = dynamic.query(gamma, theta, algorithm=args.algorithm)
    report = None
    if args.updates:
        report = dynamic.apply(read_update_script(args.updates))
    result = dynamic.query(gamma, theta, algorithm=args.algorithm)
    stats = dynamic.stats()
    if args.json:
        payload = {"result": result.summary(), "engine": stats}
        if before is not None:
            payload["before"] = before.summary()
        if report is not None:
            payload["report"] = report.as_dict()
        print(json.dumps(payload, indent=2))
    else:
        if before is not None:
            print(f"# before updates: {before.maximal_count} maximal "
                  f"{gamma}-quasi-cliques with >= {theta} vertices")
        if report is not None:
            print(_report_lines(report))
        print(f"# {result.maximal_count} maximal {gamma}-quasi-cliques with >= {theta} "
              f"vertices ({result.algorithm})")
        for clique in result.maximal_quasi_cliques:
            _print_clique(clique)
        cache = stats["cache"]
        print(f"# cache: {cache['hits']} hits / {cache['misses']} misses; "
              f"{stats['dynamic']['updates']['entries_retained']} entries retained "
              f"across updates")
    if args.output:
        write_quasi_cliques(result.maximal_quasi_cliques, args.output)
    return 0


def _command_dynamic_stats(args: argparse.Namespace) -> int:
    dynamic = _load_dynamic(args)
    if args.updates:
        dynamic.apply(read_update_script(args.updates))
    summary = dynamic.prepared.summary()
    payload = {"prepared": summary, "dynamic": dynamic.stats()["dynamic"]}
    print(json.dumps(payload, indent=2))
    return 0


# ----------------------------------------------------------------------
# The `serve` / `client` / `worker` commands (repro.serve)
# ----------------------------------------------------------------------
#: Default TCP port of `repro serve` / `repro client` (0 = ephemeral).
DEFAULT_SERVE_PORT = 7411


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .resilience import install_plan
    from .serve import ReproService

    if args.faults:
        install_plan(args.faults)
    service = ReproService(
        host=args.host, port=args.port,
        max_concurrent=args.max_concurrent, max_queue=args.max_queue,
        default_time_limit=args.default_time_limit,
        max_time_limit=args.max_time_limit, max_results=args.max_results,
        batch_size=args.batch_size, single_flight=not args.no_coalesce,
        allow_shutdown=args.allow_shutdown, trace_dir=args.trace_dir,
        circuit_threshold=args.circuit_threshold,
        circuit_reset=args.circuit_reset)
    for name in args.dataset or []:
        service.add_dataset(name)
    if args.input:
        service.add_graph(args.name or args.input, read_edge_list(args.input))
    if not service.hosts:
        raise SystemExit("nothing to serve: give --dataset NAME (repeatable) "
                         "and/or --input FILE")

    async def _run() -> None:
        await service.start()
        print(f"# serving {', '.join(sorted(service.hosts))} on "
              f"{service.host}:{service.port} "
              f"(max {service.admission.max_concurrent} concurrent, "
              f"queue {service.admission.max_queue}"
              f"{', coalescing' if service.single_flight else ''})",
              flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    return 0


def _command_client(args: argparse.Namespace) -> int:
    from .resilience import RetryPolicy
    from .serve import ServeClient
    from .serve.protocol import clique_to_wire

    retry = (RetryPolicy(max_attempts=args.retries + 1)
             if args.retries > 0 else None)
    with ServeClient(host=args.host, port=args.port,
                     timeout=args.timeout, retry=retry) as client:
        if args.query or args.spec:
            if args.spec:
                spec_fields = QuerySpec.fields_from_json(
                    Path(args.spec).read_text(encoding="utf-8"))
            else:
                spec_fields = QuerySpec.fields_from_json(args.query)
            done: dict = {}
            count = 0
            if retry is not None or args.deadline is not None:
                # The resilient path: retries with backoff, stream resume
                # and deadline propagation (batches print on completion).
                cliques, done = client.query(spec_fields, graph=args.graph,
                                             batch=args.batch,
                                             deadline=args.deadline)
                for clique in sorted(map(clique_to_wire, cliques)):
                    count += 1
                    if args.json:
                        print(json.dumps({"clique": clique}), flush=True)
                    else:
                        print(" ".join(str(v) for v in clique), flush=True)
            else:
                for frame in client.query_stream(spec_fields, graph=args.graph,
                                                 batch=args.batch):
                    if frame["type"] == "batch":
                        for clique in frame["cliques"]:
                            count += 1
                            if args.json:
                                print(json.dumps({"clique": clique}), flush=True)
                            else:
                                print(" ".join(str(v) for v in clique),
                                      flush=True)
                    else:
                        done = frame
            if args.json:
                print(json.dumps(done))
            else:
                print(f"# {done.get('delivered', count)} answers "
                      f"({'cache' if done.get('from_cache') else 'executed'}"
                      f"{'; coalesced' if done.get('coalesced') else ''}; "
                      f"{done.get('seconds', 0):.3f}s server-side)")
        elif args.mutate:
            script = Path(args.mutate).read_text(encoding="utf-8")
            report = client.mutate(script=script, graph=args.graph)
            print(json.dumps(report, indent=2) if args.json
                  else f"# {report.get('mutations', '?')} mutations applied; "
                       f"cache: {report.get('invalidated', '?')} invalidated, "
                       f"{report.get('retained', '?')} retained")
        elif args.stats:
            print(json.dumps(client.stats(), indent=2))
        elif args.graphs:
            print(json.dumps(client.graphs(), indent=2))
        elif args.flush:
            print(f"# {client.flush(args.graph)} cached results flushed")
        elif args.shutdown:
            client.shutdown()
            print("# server shut down")
        else:
            client.ping()
            print("# pong")
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .serve import SpoolQueue, SpoolWorker

    spool = SpoolQueue(args.spool, lease_seconds=args.lease_seconds,
                       max_attempts=args.max_attempts)
    worker = SpoolWorker(spool, worker_id=args.worker_id)

    def _report(w) -> None:
        print(f"# {w.worker_id}: {w.processed} tasks processed", flush=True)

    processed = worker.run(max_tasks=args.max_tasks,
                           idle_timeout=args.idle_timeout, poll=args.poll,
                           progress=_report if args.verbose else None)
    print(f"# worker {worker.worker_id} done: {processed} tasks")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mqce",
        description="Maximal quasi-clique enumeration (FastQC / DCFastQC / Quick+)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    query_parser = subparsers.add_parser(
        "query", help="run one declarative QuerySpec query (enumerate / top-k / "
        "containment / count, with budgets and streaming)")
    _add_graph_arguments(query_parser)
    query_parser.add_argument("--spec", help="JSON file with QuerySpec fields "
                              "(explicit flags override it)")
    query_parser.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
    query_parser.add_argument("--theta", "-t", type=int, help="minimum quasi-clique size")
    query_parser.add_argument("--algorithm", "-a", choices=("auto",) + ALGORITHMS,
                              help="force the MQCE-S1 algorithm (default: planner)")
    query_parser.add_argument("--branching", choices=("hybrid", "sym-se", "se"),
                              help="force the branching rule")
    query_parser.add_argument("--framework", choices=DC_FRAMEWORKS,
                              help="force the divide-and-conquer framework")
    query_parser.add_argument("--kernel", choices=KERNELS,
                              help="enumeration kernel for FastQC/DCFastQC/Quick+: "
                              "incremental degree ledgers (default) or the "
                              "mask-based reference oracle")
    query_parser.add_argument("--max-rounds", type=int, help="subproblem shrinking rounds")
    query_parser.add_argument("--parallel", choices=SPEC_PARALLEL_MODES,
                              help="parallel execution mode: auto lets the "
                              "planner pick shard or work-stealing branch "
                              "parallelism from the subproblem-size histogram")
    query_parser.add_argument("--workers", type=int, metavar="N",
                              help="process-pool size for parallel plans")
    query_parser.add_argument("--containing", nargs="+", metavar="VERTEX",
                              help="only quasi-cliques containing these vertices")
    query_parser.add_argument("--top", type=int, metavar="K",
                              help="only the K largest answers")
    query_parser.add_argument("--count", action="store_true",
                              help="print only the number of answers")
    query_parser.add_argument("--limit", type=int, metavar="N",
                              help="deliver at most N answers")
    query_parser.add_argument("--time-limit", type=float, metavar="SECONDS",
                              help="soft wall-clock budget (best-effort results)")
    query_parser.add_argument("--no-candidates", action="store_true",
                              help="drop the candidate list from JSON/summary output")
    query_parser.add_argument("--stream", action="store_true",
                              help="print each maximal quasi-clique as soon as it "
                              "is confirmed (incremental enumeration)")
    query_parser.add_argument("--explain", action="store_true",
                              help="print the query plan without enumerating")
    query_parser.add_argument("--json", action="store_true", help="print JSON only")
    query_parser.add_argument("--output", "-o", help="write the answers to this file")
    query_parser.add_argument("--trace", metavar="FILE",
                              help="write a Chrome trace (chrome://tracing / "
                              "Perfetto) of the query's phase spans to FILE")
    query_parser.add_argument("--progress-every", type=int, metavar="N",
                              help="print a heartbeat to stderr every N "
                              "enumeration branches")
    query_parser.set_defaults(handler=_command_query)

    enumerate_parser = subparsers.add_parser("enumerate", help="run the MQCE pipeline")
    _add_graph_arguments(enumerate_parser)
    enumerate_parser.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
    enumerate_parser.add_argument("--theta", "-t", type=int, help="minimum quasi-clique size")
    enumerate_parser.add_argument("--algorithm", "-a", choices=ALGORITHMS, default="dcfastqc")
    enumerate_parser.add_argument("--output", "-o", help="write the MQCs to this file")
    enumerate_parser.add_argument("--json", action="store_true", help="print a JSON summary only")
    enumerate_parser.set_defaults(handler=_command_enumerate)

    topk_parser = subparsers.add_parser("topk", help="find the k largest quasi-cliques")
    _add_graph_arguments(topk_parser)
    topk_parser.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
    topk_parser.add_argument("-k", type=int, default=3, help="how many quasi-cliques (default 3)")
    topk_parser.add_argument("--min-size", type=int, default=3,
                             help="smallest size threshold the search may drop to")
    topk_parser.add_argument("--heuristic", action="store_true",
                             help="use kernel expansion instead of the exact search")
    topk_parser.set_defaults(handler=_command_topk)

    community_parser = subparsers.add_parser(
        "community", help="find quasi-cliques containing the given vertices")
    _add_graph_arguments(community_parser)
    community_parser.add_argument("vertices", nargs="+", help="query vertex labels")
    community_parser.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
    community_parser.add_argument("--theta", "-t", type=int, help="minimum quasi-clique size")
    community_parser.set_defaults(handler=_command_community)

    stats_parser = subparsers.add_parser("stats", help="print graph statistics")
    _add_graph_arguments(stats_parser)
    stats_parser.set_defaults(handler=_command_stats)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="stream an edge-list file into the CSR large-graph backend")
    ingest_parser.add_argument("input", help="edge-list file to ingest")
    ingest_parser.add_argument("--backend", choices=("csr", "dict"),
                               default="csr",
                               help="graph representation to build (dict exists "
                               "for memory comparisons; default csr)")
    ingest_parser.add_argument("--string-labels", action="store_true",
                               help="keep all labels as strings (skip canonical "
                                    "integer conversion)")
    ingest_parser.add_argument("--reject-duplicates", action="store_true",
                               help="fail on a repeated edge pair instead of "
                                    "deduplicating silently")
    ingest_parser.add_argument("--gamma", "-g", type=float,
                               help="also run one enumerate query: degree fraction")
    ingest_parser.add_argument("--theta", "-t", type=int,
                               help="also run one enumerate query: minimum size")
    ingest_parser.add_argument("--time-limit", type=float,
                               help="query budget in seconds (best-effort subset)")
    ingest_parser.add_argument("--limit", type=int,
                               help="stop the query after this many answers")
    ingest_parser.add_argument("--json", action="store_true",
                               help="print a JSON report instead of text")
    ingest_parser.set_defaults(handler=_command_ingest)

    datasets_parser = subparsers.add_parser("datasets", help="list dataset analogues")
    datasets_parser.set_defaults(handler=_command_datasets)

    table1_parser = subparsers.add_parser("table1", help="regenerate Table 1")
    table1_parser.add_argument("names", nargs="*", help="dataset names (default: all)")
    table1_parser.add_argument("--skip-quickplus", action="store_true")
    table1_parser.set_defaults(handler=_command_table1)

    figure_parser = subparsers.add_parser("figure", help="regenerate a figure")
    figure_parser.add_argument("figure", choices=sorted(_FIGURE_DISPATCH))
    figure_parser.set_defaults(handler=_command_figure)

    engine_parser = subparsers.add_parser(
        "engine", help="persistent query engine (prepared graphs, plans, caching)")
    engine_subparsers = engine_parser.add_subparsers(dest="engine_command", required=True)

    def _add_engine_parameters(sub: argparse.ArgumentParser,
                               branching: bool = True) -> None:
        _add_graph_arguments(sub)
        sub.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
        sub.add_argument("--theta", "-t", type=int, help="minimum quasi-clique size")
        sub.add_argument("--algorithm", "-a", choices=("auto",) + ALGORITHMS,
                         default="auto", help="force the MQCE-S1 algorithm "
                         "(default: let the planner decide)")
        if branching:
            sub.add_argument("--branching", choices=("hybrid", "sym-se", "se"),
                             help="force the branching rule")
            sub.add_argument("--parallel", choices=SPEC_PARALLEL_MODES,
                             help="parallel execution mode: auto lets the "
                             "planner pick shard or work-stealing branch "
                             "parallelism (default: auto)")
            sub.add_argument("--workers", type=int, metavar="N",
                             help="process-pool size for parallel plans")

    query_sub = engine_subparsers.add_parser(
        "query", help="run one MQCE query through the engine")
    _add_engine_parameters(query_sub)
    query_sub.add_argument("--repeat", type=int, default=1,
                           help="run the query N times (repeats hit the cache)")
    query_sub.add_argument("--output", "-o", help="write the MQCs to this file")
    query_sub.add_argument("--json", action="store_true", help="print JSON only")
    query_sub.set_defaults(handler=_command_engine_query)

    batch_sub = engine_subparsers.add_parser(
        "batch", help="run a gamma x theta parameter grid through one engine")
    _add_engine_parameters(batch_sub, branching=False)
    batch_sub.add_argument("--gammas", help="comma-separated gamma values "
                           "(default: the single --gamma / dataset default)")
    batch_sub.add_argument("--thetas", help="comma-separated theta values "
                           "(default: the single --theta / dataset default)")
    batch_sub.add_argument("--repeat", type=int, default=1,
                           help="repeat the whole grid N times (cache demo)")
    batch_sub.add_argument("--json", action="store_true", help="print JSON only")
    batch_sub.set_defaults(handler=_command_engine_batch)

    explain_sub = engine_subparsers.add_parser(
        "explain", help="print the query plan without running the enumeration")
    _add_engine_parameters(explain_sub)
    explain_sub.add_argument("--json", action="store_true", help="print JSON only")
    explain_sub.set_defaults(handler=_command_engine_explain)

    stats_sub = engine_subparsers.add_parser(
        "stats", help="prepare the graph and print its artifacts and timings")
    _add_graph_arguments(stats_sub)
    stats_sub.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
    stats_sub.add_argument("--theta", "-t", type=int, help="minimum quasi-clique size")
    stats_sub.add_argument("--prometheus", action="store_true",
                           help="print the process metrics registry in "
                           "Prometheus text exposition format (runs one query "
                           "first when gamma/theta are available)")
    stats_sub.set_defaults(handler=_command_engine_stats)

    dynamic_parser = subparsers.add_parser(
        "dynamic", help="dynamic graph updates with incremental engine maintenance")
    dynamic_subparsers = dynamic_parser.add_subparsers(dest="dynamic_command",
                                                       required=True)

    apply_sub = dynamic_subparsers.add_parser(
        "apply", help="apply an update script to a graph and report the sync")
    _add_graph_arguments(apply_sub)
    apply_sub.add_argument("--updates", "-u", required=True,
                           help="update script: 'add U V' / 'remove U V' / "
                           "'add-vertex U' / 'remove-vertex U' per line")
    apply_sub.add_argument("--output", "-o", help="write the updated edge list here")
    apply_sub.add_argument("--json", action="store_true", help="print JSON only")
    apply_sub.set_defaults(handler=_command_dynamic_apply)

    dquery_sub = dynamic_subparsers.add_parser(
        "query", help="query through the dynamic engine, applying updates "
        "incrementally in between")
    _add_graph_arguments(dquery_sub)
    dquery_sub.add_argument("--updates", "-u", help="update script applied before "
                            "the (final) query")
    dquery_sub.add_argument("--gamma", "-g", type=float, help="degree fraction in [0.5, 1]")
    dquery_sub.add_argument("--theta", "-t", type=int, help="minimum quasi-clique size")
    dquery_sub.add_argument("--algorithm", "-a", choices=("auto",) + ALGORITHMS,
                            default="auto", help="force the MQCE-S1 algorithm")
    dquery_sub.add_argument("--before", action="store_true",
                            help="also run (and report) the query before the updates, "
                            "demonstrating which cache entries survive")
    dquery_sub.add_argument("--output", "-o", help="write the final answers to this file")
    dquery_sub.add_argument("--json", action="store_true", help="print JSON only")
    dquery_sub.set_defaults(handler=_command_dynamic_query)

    dstats_sub = dynamic_subparsers.add_parser(
        "stats", help="print incremental-maintenance statistics (patch counters, "
        "core drift, invalidations)")
    _add_graph_arguments(dstats_sub)
    dstats_sub.add_argument("--updates", "-u", help="update script applied first")
    dstats_sub.set_defaults(handler=_command_dynamic_stats)

    serve_parser = subparsers.add_parser(
        "serve", help="boot the long-lived query service (repro.serve)")
    serve_parser.add_argument("--dataset", "-d", action="append",
                              help="registered dataset analogue to serve "
                              "(repeatable)")
    serve_parser.add_argument("--input", "-i", help="edge-list file to serve")
    serve_parser.add_argument("--name", help="graph name for --input "
                              "(default: the file path)")
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=DEFAULT_SERVE_PORT,
                              help=f"TCP port (default {DEFAULT_SERVE_PORT}; "
                              "0 = ephemeral, printed on startup)")
    serve_parser.add_argument("--max-concurrent", type=int, default=4,
                              help="enumeration slots (default 4)")
    serve_parser.add_argument("--max-queue", type=int, default=16,
                              help="slot wait-queue bound before load shedding "
                              "(default 16)")
    serve_parser.add_argument("--batch-size", type=int, default=64,
                              help="cliques per batch frame (default 64)")
    serve_parser.add_argument("--default-time-limit", type=float, metavar="SECONDS",
                              help="time budget applied to requests that carry none")
    serve_parser.add_argument("--max-time-limit", type=float, metavar="SECONDS",
                              help="hard cap on per-request time budgets")
    serve_parser.add_argument("--max-results", type=int, metavar="N",
                              help="hard cap on per-request result budgets")
    serve_parser.add_argument("--no-coalesce", action="store_true",
                              help="disable single-flight coalescing of "
                              "identical in-flight queries (A/B testing)")
    serve_parser.add_argument("--allow-shutdown", action="store_true",
                              help="honour the 'shutdown' wire operation")
    serve_parser.add_argument("--trace-dir", metavar="DIR",
                              help="write a Chrome trace per query request here")
    serve_parser.add_argument("--circuit-threshold", type=int, default=5,
                              metavar="N", help="consecutive failures per "
                              "(graph, spec) before its circuit opens "
                              "(default 5)")
    serve_parser.add_argument("--circuit-reset", type=float, default=30.0,
                              metavar="SECONDS", help="seconds an open circuit "
                              "waits before a half-open probe (default 30)")
    serve_parser.add_argument("--faults", metavar="PLAN",
                              help="deterministic fault-injection plan "
                              "(REPRO_FAULTS syntax, e.g. "
                              "'serve.write_frame:drop:times=2'); chaos "
                              "testing only")
    serve_parser.set_defaults(handler=_command_serve)

    client_parser = subparsers.add_parser(
        "client", help="talk to a running repro serve instance")
    client_parser.add_argument("--host", default="127.0.0.1", help="server address")
    client_parser.add_argument("--port", type=int, default=DEFAULT_SERVE_PORT,
                               help=f"server port (default {DEFAULT_SERVE_PORT})")
    client_parser.add_argument("--graph", help="target graph name (needed only "
                               "when the server hosts several)")
    client_parser.add_argument("--timeout", type=float, default=60.0,
                               help="socket timeout in seconds (default 60)")
    client_parser.add_argument("--retries", type=int, default=0, metavar="N",
                               help="retry transient failures up to N times "
                               "with decorrelated-jitter backoff, resuming "
                               "interrupted query streams (default 0)")
    client_parser.add_argument("--deadline", type=float, metavar="SECONDS",
                               help="overall wall-clock budget; bounds the "
                               "retry loop and clamps the server-side "
                               "enumeration budget")
    client_action = client_parser.add_mutually_exclusive_group()
    client_action.add_argument("--query", metavar="JSON",
                               help="QuerySpec fields as an inline JSON object")
    client_action.add_argument("--spec", metavar="FILE",
                               help="JSON file with QuerySpec fields")
    client_action.add_argument("--mutate", metavar="FILE",
                               help="update script to apply server-side")
    client_action.add_argument("--stats", action="store_true",
                               help="print server statistics")
    client_action.add_argument("--graphs", action="store_true",
                               help="list the served graphs")
    client_action.add_argument("--flush", action="store_true",
                               help="drop the server's cached results")
    client_action.add_argument("--shutdown", action="store_true",
                               help="stop the server (needs --allow-shutdown "
                               "server-side)")
    client_parser.add_argument("--batch", type=int, metavar="N",
                               help="cliques per batch frame")
    client_parser.add_argument("--json", action="store_true", help="print JSON only")
    client_parser.set_defaults(handler=_command_client)

    worker_parser = subparsers.add_parser(
        "worker", help="pull-based spool worker for distributed enumeration")
    worker_parser.add_argument("--spool", required=True, metavar="DIR",
                               help="spool queue directory shared with the "
                               "coordinator")
    worker_parser.add_argument("--max-tasks", type=int, metavar="N",
                               help="exit after processing N tasks")
    worker_parser.add_argument("--idle-timeout", type=float, metavar="SECONDS",
                               help="exit after this long with nothing to claim "
                               "(default: poll forever)")
    worker_parser.add_argument("--poll", type=float, default=0.1,
                               help="idle poll interval in seconds (default 0.1)")
    worker_parser.add_argument("--worker-id", help="stable worker identity "
                               "(default: host-pid)")
    worker_parser.add_argument("--lease-seconds", type=float, default=15.0,
                               metavar="SECONDS", help="claimed-task lease; a "
                               "task whose worker stops heartbeating this "
                               "long is reclaimed (default 15)")
    worker_parser.add_argument("--max-attempts", type=int, default=3,
                               metavar="N", help="execution attempts per task "
                               "before dead-letter quarantine (default 3)")
    worker_parser.add_argument("--verbose", "-v", action="store_true",
                               help="print a line per processed task")
    worker_parser.set_defaults(handler=_command_worker)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        # Unified error surface: invalid parameters, specs, queries and graph
        # inputs exit with code 2 and one line on stderr, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
