"""Set-trie substrate used to solve the MQCE-S2 post-processing step."""

from .settrie import SetTrie
from .filter import filter_non_maximal, maximal_and_filtered_counts

__all__ = ["SetTrie", "filter_non_maximal", "maximal_and_filtered_counts"]
