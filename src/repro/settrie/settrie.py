"""Set-trie data structure for subset / superset containment queries.

The MQCE-S2 step (Section 2.2) filters non-maximal quasi-cliques out of the
candidate set produced by MQCE-S1.  The paper follows Savnik et al. (2021) and
uses a *set-trie*: sets are stored as sorted sequences of elements along trie
paths, which supports

* ``get_all_subsets(query)`` — every stored set that is a subset of the query
  (the ``GetAllSubsets`` query of the paper), and
* ``exists_superset(query)`` / ``get_all_supersets(query)`` — whether / which
  stored sets contain the query.

Elements may be arbitrary hashable, mutually comparable values; internally they
are mapped to dense integer ranks so mixed-type vertex labels also work.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional


class _Node:
    __slots__ = ("children", "terminal_ids")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.terminal_ids: list[int] = []


class SetTrie:
    """A set-trie storing a family of sets with subset/superset queries."""

    def __init__(self, sets: Optional[Iterable[Iterable[Hashable]]] = None) -> None:
        self._root = _Node()
        self._rank_of: dict[Hashable, int] = {}
        self._stored: list[frozenset] = []
        if sets is not None:
            for entry in sets:
                self.insert(entry)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _rank(self, element: Hashable, create: bool) -> Optional[int]:
        rank = self._rank_of.get(element)
        if rank is None and create:
            rank = len(self._rank_of)
            self._rank_of[element] = rank
        return rank

    def insert(self, elements: Iterable[Hashable]) -> int:
        """Insert a set and return its integer id (duplicates get new ids)."""
        entry = frozenset(elements)
        ranks = sorted(self._rank(element, create=True) for element in entry)
        node = self._root
        for rank in ranks:
            node = node.children.setdefault(rank, _Node())
        set_id = len(self._stored)
        node.terminal_ids.append(set_id)
        self._stored.append(entry)
        return set_id

    def __len__(self) -> int:
        return len(self._stored)

    def __contains__(self, elements: Iterable[Hashable]) -> bool:
        entry = frozenset(elements)
        ranks = []
        for element in entry:
            rank = self._rank(element, create=False)
            if rank is None:
                return False
            ranks.append(rank)
        node = self._root
        for rank in sorted(ranks):
            node = node.children.get(rank)
            if node is None:
                return False
        return bool(node.terminal_ids)

    def stored_sets(self) -> list[frozenset]:
        """Return all stored sets in insertion order."""
        return list(self._stored)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get_all_subsets(self, query: Iterable[Hashable]) -> list[frozenset]:
        """Return every stored set that is a subset of ``query`` (GetAllSubsets)."""
        return [self._stored[set_id] for set_id in self.get_all_subset_ids(query)]

    def get_all_subset_ids(self, query: Iterable[Hashable]) -> list[int]:
        """Return the ids of every stored set that is a subset of ``query``."""
        ranks = self._query_ranks(query)
        found: list[int] = []
        self._collect_subsets(self._root, ranks, 0, found)
        return found

    def _query_ranks(self, query: Iterable[Hashable]) -> list[int]:
        ranks = []
        for element in frozenset(query):
            rank = self._rank(element, create=False)
            if rank is not None:
                ranks.append(rank)
        ranks.sort()
        return ranks

    def _collect_subsets(self, node: _Node, ranks: list[int], start: int,
                         found: list[int]) -> None:
        found.extend(node.terminal_ids)
        if start >= len(ranks):
            return
        # Children are only followed for elements that appear in the query.
        if len(node.children) <= len(ranks) - start:
            for rank, child in node.children.items():
                position = _first_index_at_least(ranks, start, rank)
                if position < len(ranks) and ranks[position] == rank:
                    self._collect_subsets(child, ranks, position + 1, found)
        else:
            for position in range(start, len(ranks)):
                child = node.children.get(ranks[position])
                if child is not None:
                    self._collect_subsets(child, ranks, position + 1, found)

    def exists_superset(self, query: Iterable[Hashable], proper: bool = False) -> bool:
        """Return True iff some stored set is a superset of ``query``.

        With ``proper=True``, only strictly larger supersets count.
        """
        entry = frozenset(query)
        ranks = []
        for element in entry:
            rank = self._rank(element, create=False)
            if rank is None:
                return False
            ranks.append(rank)
        ranks.sort()
        return self._exists_superset(self._root, ranks, 0, len(entry), proper)

    def _exists_superset(self, node: _Node, ranks: list[int], matched: int,
                         query_size: int, proper: bool) -> bool:
        if matched == len(ranks):
            if node.terminal_ids and (not proper or self._has_larger(node, query_size)):
                return True
            return any(self._subtree_has_terminal(child) for child in node.children.values())
        target = ranks[matched]
        for rank, child in node.children.items():
            if rank > target:
                continue
            next_matched = matched + 1 if rank == target else matched
            if self._exists_superset(child, ranks, next_matched, query_size, proper):
                return True
        return False

    def _has_larger(self, node: _Node, query_size: int) -> bool:
        return any(len(self._stored[set_id]) > query_size for set_id in node.terminal_ids)

    def _subtree_has_terminal(self, node: _Node) -> bool:
        if node.terminal_ids:
            return True
        return any(self._subtree_has_terminal(child) for child in node.children.values())

    def get_all_supersets(self, query: Iterable[Hashable]) -> list[frozenset]:
        """Return every stored set that is a superset of ``query``."""
        entry = frozenset(query)
        ranks = []
        for element in entry:
            rank = self._rank(element, create=False)
            if rank is None:
                return []
            ranks.append(rank)
        ranks.sort()
        found: list[int] = []
        self._collect_supersets(self._root, ranks, 0, found)
        return [self._stored[set_id] for set_id in found]

    def _collect_supersets(self, node: _Node, ranks: list[int], matched: int,
                           found: list[int]) -> None:
        if matched == len(ranks):
            self._collect_all(node, found)
            return
        target = ranks[matched]
        for rank, child in node.children.items():
            if rank > target:
                continue
            next_matched = matched + 1 if rank == target else matched
            self._collect_supersets(child, ranks, next_matched, found)

    def _collect_all(self, node: _Node, found: list[int]) -> None:
        found.extend(node.terminal_ids)
        for child in node.children.values():
            self._collect_all(child, found)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._stored)


def _first_index_at_least(values: list[int], start: int, target: int) -> int:
    """Return the first index >= start with values[index] >= target (binary search)."""
    low, high = start, len(values)
    while low < high:
        mid = (low + high) // 2
        if values[mid] < target:
            low = mid + 1
        else:
            high = mid
    return low
