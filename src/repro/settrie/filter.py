"""MQCE-S2: filtering non-maximal quasi-cliques from a candidate set.

Given a family ``S`` of quasi-cliques that contains every maximal quasi-clique
(the output of an MQCE-S1 algorithm such as FastQC or Quick+), the maximal ones
are exactly the members of ``S`` that are not proper subsets of any other
member.  The paper solves this with repeated ``GetAllSubsets`` queries on a
set-trie; both that strategy and a superset-query strategy are provided.
"""

from __future__ import annotations

from collections.abc import Iterable

from .settrie import SetTrie


def filter_non_maximal(candidate_sets: Iterable[frozenset], theta: int = 1,
                       method: str = "subsets") -> list[frozenset]:
    """Return the inclusion-maximal members of ``candidate_sets`` with size >= theta.

    Parameters
    ----------
    candidate_sets:
        Quasi-cliques produced by an MQCE-S1 algorithm.  Duplicates are allowed
        and removed.
    theta:
        Minimum size of the sets to keep (the MQCE size threshold).
    method:
        ``"subsets"`` (paper strategy: issue a GetAllSubsets query per set and
        drop the proper subsets found), ``"supersets"`` (keep a set iff the
        trie holds no proper superset) or ``"pairwise"`` (quadratic reference
        implementation, used in tests).
    """
    unique = sorted(set(frozenset(entry) for entry in candidate_sets),
                    key=len, reverse=True)
    if method == "pairwise":
        return [entry for entry in unique
                if len(entry) >= theta and not any(entry < other for other in unique)]
    if method == "supersets":
        trie = SetTrie(unique)
        return [entry for entry in unique
                if len(entry) >= theta and not trie.exists_superset(entry, proper=True)]
    if method != "subsets":
        raise ValueError(f"unknown filtering method {method!r}")

    trie = SetTrie(unique)
    eliminated: set[frozenset] = set()
    # Processing from largest to smallest guarantees that when a set is used as
    # a query it has not itself been eliminated by a strictly larger set yet to
    # be processed -- maximality is transitive over the subset relation.
    for entry in unique:
        if entry in eliminated:
            continue
        for subset in trie.get_all_subsets(entry):
            if subset != entry and len(subset) < len(entry):
                eliminated.add(subset)
    return [entry for entry in unique if entry not in eliminated and len(entry) >= theta]


def maximal_and_filtered_counts(candidate_sets: Iterable[frozenset], theta: int = 1
                                ) -> tuple[int, int]:
    """Return (number of candidates, number of maximal sets) — Table 1 bookkeeping."""
    unique = set(frozenset(entry) for entry in candidate_sets)
    maximal = filter_non_maximal(unique, theta=theta)
    return len(unique), len(maximal)
