"""Definitions from Section 2 of the paper: gamma-quasi-cliques and helpers.

Conventions
-----------
Following the paper's Section 4.1 (and its worked example on Figure 1), the
*disconnection count* ``delta_bar(v, H)`` is the number of vertices of ``H``
that are **not** adjacent to ``v`` — including ``v`` itself when ``v`` is in
``H`` (a vertex never has an edge to itself).  With that convention

    delta(v, H) + delta_bar(v, H) == |H|        (for v in H)

and Lemma 1 reads: ``G[H]`` is a gamma-quasi-clique iff
``Delta(H) <= tau(|H|)`` where ``tau(x) = floor((1 - gamma) * x + gamma)``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from fractions import Fraction
from functools import lru_cache

from ..errors import ParameterError
from ..graph.graph import Graph, VertexLabel, iter_bits
from ..graph.subgraph import is_connected

#: The paper restricts gamma to [0.5, 1] so that quasi-cliques have diameter <= 2.
GAMMA_MIN = 0.5
GAMMA_MAX = 1.0


def validate_parameters(gamma: float, theta: int) -> None:
    """Validate the MQCE parameters: gamma in [0.5, 1] and theta >= 1."""
    if not GAMMA_MIN <= gamma <= GAMMA_MAX:
        raise ParameterError(f"gamma must be in [{GAMMA_MIN}, {GAMMA_MAX}], got {gamma}")
    if theta < 1 or int(theta) != theta:
        raise ParameterError(f"theta must be a positive integer, got {theta}")


@lru_cache(maxsize=None)
def gamma_fraction(gamma: float) -> Fraction:
    """Return ``gamma`` as an exact fraction of its decimal representation.

    Thresholds such as ``ceil(gamma * (|H| - 1))`` sit exactly on integer
    boundaries for common parameters (e.g. ``gamma = 0.9`` and ``|H| = 11``),
    where binary floating point rounds the wrong way and would silently change
    the quasi-clique definition.  All threshold arithmetic therefore goes
    through exact rationals derived from the decimal value the caller wrote.
    """
    if isinstance(gamma, Fraction):
        return gamma
    return Fraction(str(gamma))


@lru_cache(maxsize=None)
def gamma_pq(gamma: float) -> tuple[int, int]:
    """Return ``gamma`` as the integer pair ``(p, q)`` with ``gamma = p/q``.

    The hot loops evaluate every threshold in plain integer arithmetic
    (``tau(x) = ((q-p)*x + p) // q`` for integer ``x``, degree comparisons via
    cross-multiplication) instead of allocating :class:`fractions.Fraction`
    objects; this helper hands them the exact numerator/denominator once.
    """
    exact = gamma_fraction(gamma)
    return exact.numerator, exact.denominator


def degree_threshold(gamma: float, size: int) -> int:
    """Return ``ceil(gamma * (size - 1))``, the minimum internal degree in a QC of that size."""
    if size <= 1:
        return 0
    p, q = gamma_pq(gamma)
    return (p * (size - 1) + q - 1) // q


def tau(size, gamma: float) -> int:
    """Return ``tau(x) = floor((1 - gamma) * x + gamma)`` (Equation 8).

    ``tau`` is the maximum number of disconnections (self included) a vertex
    may have inside a gamma-quasi-clique with ``x`` vertices.  The argument may
    be fractional (an ``int``, ``float`` or ``Fraction``) because the paper
    evaluates ``tau`` at the possibly fractional size upper bound ``sigma(B)``.
    """
    if size < 0:
        return 0
    if isinstance(size, int):
        # Integer fast path: floor(((q-p)*x + p) / q), no Fraction allocations.
        p, q = gamma_pq(gamma)
        return ((q - p) * size + p) // q
    gamma_exact = gamma_fraction(gamma)
    size_exact = size if isinstance(size, Fraction) else Fraction(size)
    return math.floor((1 - gamma_exact) * size_exact + gamma_exact)


def neighbors_within(graph: Graph, vertex: VertexLabel, subset: Iterable[VertexLabel]
                     ) -> frozenset[VertexLabel]:
    """Return ``Γ(v, H)``: the neighbours of ``vertex`` inside ``subset``."""
    return graph.neighbors(vertex) & frozenset(subset)


def degree_within(graph: Graph, vertex: VertexLabel, subset: Iterable[VertexLabel]) -> int:
    """Return ``delta(v, H)``: the number of neighbours of ``vertex`` inside ``subset``."""
    return len(neighbors_within(graph, vertex, subset))


def non_neighbors_within(graph: Graph, vertex: VertexLabel, subset: Iterable[VertexLabel]
                         ) -> frozenset[VertexLabel]:
    """Return ``Γ̄(v, H)``: the vertices of ``subset`` not adjacent to ``vertex``.

    ``vertex`` itself is included when it belongs to ``subset`` (paper
    convention).
    """
    subset = frozenset(subset)
    return subset - graph.neighbors(vertex)


def disconnections_within(graph: Graph, vertex: VertexLabel, subset: Iterable[VertexLabel]) -> int:
    """Return ``delta_bar(v, H)`` under the self-counting convention."""
    return len(non_neighbors_within(graph, vertex, subset))


def max_disconnections(graph: Graph, subset: Iterable[VertexLabel]) -> int:
    """Return ``Delta(H) = max_{v in H} delta_bar(v, H)`` (Equation 2); 0 for empty H."""
    subset = frozenset(subset)
    if not subset:
        return 0
    return max(disconnections_within(graph, v, subset) for v in subset)


def is_quasi_clique(graph: Graph, subset: Iterable[VertexLabel], gamma: float,
                    require_connected: bool = True) -> bool:
    """Return True iff ``G[subset]`` is a gamma-quasi-clique (Definition 1).

    A gamma-quasi-clique must (1) be connected and (2) have every vertex
    adjacent to at least ``ceil(gamma * (|H| - 1))`` of the other vertices.
    The empty set is not a quasi-clique; a single vertex is.
    """
    subset = frozenset(subset)
    if not subset:
        return False
    for vertex in subset:
        graph.index_of(vertex)  # validate membership in the graph
    if len(subset) == 1:
        return True
    required = degree_threshold(gamma, len(subset))
    for vertex in subset:
        if degree_within(graph, vertex, subset) < required:
            return False
    if require_connected and not is_connected(graph, subset):
        return False
    return True


def is_quasi_clique_by_lemma1(graph: Graph, subset: Iterable[VertexLabel], gamma: float) -> bool:
    """Return True iff ``Delta(H) <= tau(|H|)`` (Lemma 1).

    For gamma >= 0.5 this is equivalent to :func:`is_quasi_clique` because the
    degree condition alone already forces connectivity (every vertex is
    adjacent to at least half of the others).
    """
    subset = frozenset(subset)
    if not subset:
        return False
    return max_disconnections(graph, subset) <= tau(len(subset), gamma)


def quasi_clique_size_upper_bound(gamma: float, degeneracy_value: int) -> int:
    """Return the ``2 * omega + 1`` bound on the size of any gamma-QC for gamma >= 0.5.

    Used in the paper's Section 2.2 analysis of the MQCE-S2 post-processing cost.
    """
    return 2 * degeneracy_value + 1


# ----------------------------------------------------------------------
# Index/bitmask variants used by the branch-and-bound engine
# ----------------------------------------------------------------------
def mask_degree(graph: Graph, vertex_index: int, subset_mask: int) -> int:
    """Return ``delta(v, H)`` where ``H`` is given as a bitmask."""
    return (graph.adjacency_mask(vertex_index) & subset_mask).bit_count()


def mask_disconnections(graph: Graph, vertex_index: int, subset_mask: int) -> int:
    """Return ``delta_bar(v, H)`` (self-counting) where ``H`` is a bitmask."""
    return (subset_mask & ~graph.adjacency_mask(vertex_index)).bit_count()


def mask_max_disconnections(graph: Graph, subset_mask: int) -> int:
    """Return ``Delta(H)`` where ``H`` is a bitmask; 0 for the empty mask."""
    if subset_mask == 0:
        return 0
    return max(mask_disconnections(graph, v, subset_mask) for v in iter_bits(subset_mask))


def mask_is_quasi_clique(graph: Graph, subset_mask: int, gamma: float) -> bool:
    """Bitmask variant of :func:`is_quasi_clique_by_lemma1` (valid for gamma >= 0.5)."""
    if subset_mask == 0:
        return False
    size = subset_mask.bit_count()
    return mask_max_disconnections(graph, subset_mask) <= tau(size, gamma)
