"""Maximality checks for quasi-cliques.

Checking whether a quasi-clique is *maximal* in the input graph is NP-hard
(Section 2.1), so the library offers three tools:

* :func:`satisfies_maximality_necessary_condition` — the polynomial check used
  by FastQC's output filter (Algorithm 2, line 9/22): ``H`` may be maximal only
  if no single vertex ``v`` outside ``H`` makes ``G[H ∪ {v}]`` a quasi-clique.
* :func:`is_maximal_quasi_clique` — an exact (exponential) check, intended for
  small graphs and for tests.
* :func:`extending_vertices` — the witnesses that the necessary condition
  inspects, useful for diagnostics.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

from ..graph.graph import Graph, VertexLabel, iter_bits
from .definitions import degree_threshold, is_quasi_clique


def extending_vertices(graph: Graph, subset: Iterable[VertexLabel], gamma: float
                       ) -> frozenset[VertexLabel]:
    """Return the vertices ``v`` outside ``subset`` with ``G[subset ∪ {v}]`` a QC.

    Only neighbours of the subset need to be inspected: adding a vertex with no
    edge into ``subset`` disconnects the induced subgraph.
    """
    subset = frozenset(subset)
    if not subset:
        return frozenset()
    candidates: set[VertexLabel] = set()
    for member in subset:
        candidates |= graph.neighbors(member)
    candidates -= subset
    return frozenset(v for v in candidates if is_quasi_clique(graph, subset | {v}, gamma))


def satisfies_maximality_necessary_condition(graph: Graph, subset: Iterable[VertexLabel],
                                             gamma: float) -> bool:
    """Return True iff no single outside vertex extends ``subset`` to a larger QC.

    This is a *necessary* condition for maximality: every maximal quasi-clique
    passes it, but a non-maximal QC may also pass it (when only multi-vertex
    extensions exist).  FastQC uses it to discard many non-maximal outputs
    cheaply without risking the loss of any MQC.
    """
    return not extending_vertices(graph, subset, gamma)


def mask_satisfies_maximality_necessary_condition(graph: Graph, subset_mask: int,
                                                  gamma: float) -> bool:
    """Bitmask form of :func:`satisfies_maximality_necessary_condition`.

    Valid for the library's gamma range (``gamma >= 0.5``), where the degree
    condition alone forces connectivity, so ``G[H ∪ {v}]`` is a quasi-clique
    iff every member of ``H ∪ {v}`` has at least ``ceil(gamma * |H|)``
    neighbours inside it.  This is the hot emission-path check of the ledger
    kernel.  The degree filter over the extension candidates is bit-sliced:
    ``|Γ(v) ∩ H|`` is accumulated for every vertex simultaneously in binary
    counter planes (one ripple-carry add per member of ``H``), so candidates
    below the degree requirement never cost a per-vertex popcount; only the
    few survivors run the exact per-member verification.
    """
    if subset_mask == 0:
        return True
    masks = graph.adjacency_masks()
    members = list(iter_bits(subset_mask))
    required = degree_threshold(gamma, len(members) + 1)
    if required <= 0:
        candidates = 0
        neighbourhood = 0
        for u in members:
            neighbourhood |= masks[u]
        candidates = neighbourhood & ~subset_mask
    else:
        # Vertical counters: plane i holds bit i of |Γ(v) ∩ H| per vertex v.
        planes = [0] * required.bit_length()
        sat = 0
        top = len(planes) - 1
        for u in members:
            carry = masks[u]
            for i, plane in enumerate(planes):
                planes[i] = plane ^ carry
                carry &= plane
                if not carry:
                    break
            else:
                sat |= carry
        # candidates: vertices outside H with counter >= required.
        greater = 0
        equal = -1
        for i in range(top, -1, -1):
            if (required >> i) & 1:
                equal &= planes[i]
            else:
                greater |= equal & planes[i]
        candidates = (greater | equal | sat) & ~subset_mask
    bit_length = int.bit_length
    bit_count = int.bit_count
    while candidates:
        low = candidates & -candidates
        candidates ^= low
        extended = subset_mask | low
        for u in members:
            if bit_count(masks[u] & extended) < required:
                break
        else:
            # The candidate itself passed the degree filter already.
            return False  # it extends H to a larger quasi-clique
    return True


def is_maximal_quasi_clique(graph: Graph, subset: Iterable[VertexLabel], gamma: float,
                            size_limit: int | None = None) -> bool:
    """Exact maximality check by exhaustive extension search (exponential).

    ``subset`` must itself be a quasi-clique; the function then searches for
    any strict superset (within the whole graph) that is also a quasi-clique.
    ``size_limit`` optionally caps the size of supersets considered (useful
    when the caller knows an upper bound such as ``2 * degeneracy + 1``).

    Intended for small graphs and for validating the enumeration algorithms in
    tests; the runtime is exponential in the number of remaining vertices.
    """
    subset = frozenset(subset)
    if not is_quasi_clique(graph, subset, gamma):
        return False
    # Candidate extension vertices: within distance 2 of the subset (gamma >= 0.5
    # quasi-cliques have diameter <= 2), or all remaining vertices for gamma < 0.5.
    others = [v for v in graph.vertices() if v not in subset]
    max_extra = len(others)
    if size_limit is not None:
        max_extra = min(max_extra, max(0, size_limit - len(subset)))
    for extra_size in range(1, max_extra + 1):
        for extra in combinations(others, extra_size):
            if is_quasi_clique(graph, subset | frozenset(extra), gamma):
                return False
    return True


def filter_by_necessary_condition(graph: Graph, quasi_cliques: Iterable[frozenset],
                                  gamma: float) -> list[frozenset]:
    """Drop QCs that fail the single-vertex-extension necessary condition.

    The result is still a superset of all maximal quasi-cliques.
    """
    return [clique for clique in quasi_cliques
            if satisfies_maximality_necessary_condition(graph, clique, gamma)]
