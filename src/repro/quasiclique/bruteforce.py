"""Brute-force reference enumerators.

These are deliberately simple, obviously-correct implementations used as the
ground truth in unit and property-based tests, and as the ``naive`` baseline in
the benchmark ablations.  They enumerate every vertex subset, so they are only
usable on graphs with roughly 20 vertices or fewer (or with a size cap).
"""

from __future__ import annotations

from itertools import combinations

from ..graph.graph import Graph
from .definitions import is_quasi_clique


def enumerate_all_quasi_cliques(graph: Graph, gamma: float, theta: int = 1,
                                max_size: int | None = None) -> list[frozenset]:
    """Enumerate every gamma-quasi-clique with ``theta <= |H| <= max_size``.

    ``max_size`` defaults to the number of vertices.  Exponential; test use only.
    """
    vertices = graph.vertices()
    upper = len(vertices) if max_size is None else min(max_size, len(vertices))
    result: list[frozenset] = []
    for size in range(max(theta, 1), upper + 1):
        for subset in combinations(vertices, size):
            candidate = frozenset(subset)
            if is_quasi_clique(graph, candidate, gamma):
                result.append(candidate)
    return result


def enumerate_maximal_quasi_cliques_bruteforce(graph: Graph, gamma: float, theta: int = 1,
                                               max_size: int | None = None) -> list[frozenset]:
    """Enumerate every *maximal* gamma-quasi-clique of size >= theta.

    Maximality is global: a QC of size >= theta is excluded when any strict
    superset (of any size) is also a QC.  Exponential; test use only.
    """
    all_cliques = enumerate_all_quasi_cliques(graph, gamma, theta=1, max_size=max_size)
    all_set = set(all_cliques)
    maximal: list[frozenset] = []
    for clique in all_cliques:
        if len(clique) < theta:
            continue
        if any(clique < other for other in all_set):
            continue
        maximal.append(clique)
    return maximal


def is_superset_of_all_maximal(candidate_output: list[frozenset], graph: Graph,
                               gamma: float, theta: int = 1) -> bool:
    """Check the MQCE-S1 guarantee: the output contains every large MQC."""
    expected = enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta)
    produced = set(candidate_output)
    return all(mqc in produced for mqc in expected)
