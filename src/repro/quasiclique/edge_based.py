"""Edge-based (density) quasi-cliques, for contrast with the degree-based ones.

The paper's related work (Section 7) distinguishes the *degree-based*
gamma-quasi-cliques it studies from the *edge-based* variant of Abello et al.:
an edge-based gamma-quasi-clique is a subgraph whose edge count is at least a
fraction gamma of a clique's, i.e. ``|E(H)| >= gamma * |H| * (|H| - 1) / 2``.
Degree-based QCs are always edge-based QCs of the same gamma but not vice
versa (degree-based is the denser notion), which is why the paper focuses on
the degree-based definition.  This module provides the edge-based definition
and a small brute-force enumerator so that the relationship can be
demonstrated and tested.
"""

from __future__ import annotations

from collections.abc import Iterable
from fractions import Fraction
from itertools import combinations

from ..graph.graph import Graph, VertexLabel
from ..graph.subgraph import is_connected


def internal_edge_count(graph: Graph, subset: Iterable[VertexLabel]) -> int:
    """Return the number of edges of the induced subgraph ``G[subset]``."""
    subset = frozenset(subset)
    count = 0
    for vertex in subset:
        count += len(graph.neighbors(vertex) & subset)
    return count // 2


def edge_density(graph: Graph, subset: Iterable[VertexLabel]) -> float:
    """Return ``|E(H)| / (|H| * (|H| - 1) / 2)``; 1.0 for singletons."""
    subset = frozenset(subset)
    if len(subset) <= 1:
        return 1.0
    possible = len(subset) * (len(subset) - 1) // 2
    return internal_edge_count(graph, subset) / possible


def is_edge_based_quasi_clique(graph: Graph, subset: Iterable[VertexLabel], gamma: float,
                               require_connected: bool = True) -> bool:
    """Return True iff ``G[subset]`` is an edge-based gamma-quasi-clique."""
    subset = frozenset(subset)
    if not subset:
        return False
    for vertex in subset:
        graph.index_of(vertex)
    if len(subset) == 1:
        return True
    if require_connected and not is_connected(graph, subset):
        return False
    possible = Fraction(len(subset) * (len(subset) - 1), 2)
    required = Fraction(str(gamma)) * possible
    return internal_edge_count(graph, subset) >= required


def enumerate_edge_based_quasi_cliques(graph: Graph, gamma: float, theta: int = 1,
                                       max_size: int | None = None) -> list[frozenset]:
    """Brute-force enumeration of edge-based gamma-QCs (small graphs only)."""
    vertices = graph.vertices()
    upper = len(vertices) if max_size is None else min(max_size, len(vertices))
    result = []
    for size in range(max(1, theta), upper + 1):
        for subset in combinations(vertices, size):
            candidate = frozenset(subset)
            if is_edge_based_quasi_clique(graph, candidate, gamma):
                result.append(candidate)
    return result


def degree_based_implies_edge_based(graph: Graph, subset: Iterable[VertexLabel],
                                    gamma: float) -> bool:
    """Check the containment the paper cites: degree-based QC => edge-based QC.

    Returns True when the implication holds for this particular subset (it
    always should; the function exists so tests can assert it en masse).
    """
    from .definitions import is_quasi_clique

    if not is_quasi_clique(graph, subset, gamma):
        return True
    return is_edge_based_quasi_clique(graph, subset, gamma)
