"""Result objects returned by the end-to-end MQCE pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.stats import SearchStatistics
from ..graph.statistics import QuasiCliqueStatistics, quasi_clique_statistics


@dataclass
class EnumerationResult:
    """The outcome of one end-to-end maximal quasi-clique enumeration.

    Attributes
    ----------
    maximal_quasi_cliques:
        The final answer: every maximal gamma-quasi-clique of size >= theta,
        as frozensets of vertex labels.
    candidate_quasi_cliques:
        The MQCE-S1 output before the non-maximality filter (what the paper
        reports as #{DCFastQC} / #{Quick+} in Table 1).
    algorithm, gamma, theta:
        The configuration that produced the result.
    search_statistics:
        Branch-and-bound counters (branches explored, prunes, outputs, ...).
    enumeration_seconds / filtering_seconds:
        Wall-clock time of the MQCE-S1 search and the MQCE-S2 set-trie filter.
    truncated:
        True when a query budget (``time_limit``) stopped the enumeration
        before completion; the result is then a best-effort subset and is
        never cached by the engine.
    """

    maximal_quasi_cliques: list[frozenset]
    candidate_quasi_cliques: list[frozenset]
    algorithm: str
    gamma: float
    theta: int
    search_statistics: SearchStatistics = field(default_factory=SearchStatistics)
    enumeration_seconds: float = 0.0
    filtering_seconds: float = 0.0
    truncated: bool = False

    @property
    def maximal_count(self) -> int:
        return len(self.maximal_quasi_cliques)

    @property
    def candidate_count(self) -> int:
        return len(self.candidate_quasi_cliques)

    @property
    def total_seconds(self) -> float:
        return self.enumeration_seconds + self.filtering_seconds

    def size_statistics(self) -> QuasiCliqueStatistics:
        """Size statistics (|H_min|, |H_max|, |H_avg|) of the maximal QCs (Table 1)."""
        return quasi_clique_statistics(self.maximal_quasi_cliques)

    def summary(self) -> dict:
        """A flat dictionary convenient for harness tables and JSON dumps."""
        sizes = self.size_statistics()
        return {
            "algorithm": self.algorithm,
            "gamma": self.gamma,
            "theta": self.theta,
            "maximal_count": self.maximal_count,
            "candidate_count": self.candidate_count,
            "min_size": sizes.min_size,
            "max_size": sizes.max_size,
            "avg_size": sizes.avg_size,
            "enumeration_seconds": self.enumeration_seconds,
            "filtering_seconds": self.filtering_seconds,
            "branches_explored": self.search_statistics.branches_explored,
        }
