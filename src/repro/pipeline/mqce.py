"""End-to-end MQCE pipeline: MQCE-S1 enumeration followed by MQCE-S2 filtering.

This is the library's primary *one-shot* entry point.  It runs one of the
MQCE-S1 algorithms (DCFastQC by default, FastQC or Quick+ on request), removes
non-maximal quasi-cliques with the set-trie filter, and returns both the final
maximal quasi-cliques and the intermediate candidate set together with timing
and search statistics.

Every call re-validates the parameters and re-derives the per-graph
preprocessing (core decomposition, ordering) from scratch, which is the right
trade-off for a single enumeration.  For *repeated* queries over the same
graph — parameter sweeps, interactive exploration, serving traffic — use
:class:`repro.engine.MQCEEngine` instead: it wraps these same functions with a
:class:`~repro.engine.prepared.PreparedGraph` (preprocessing computed once), a
cost-based :class:`~repro.engine.planner.QueryPlanner` (algorithm / branching /
parallelism selection) and an LRU :class:`~repro.engine.cache.ResultCache`
(identical queries are served without re-enumeration).  For repeated queries
over a graph that *changes* in between, use
:class:`repro.dynamic.DynamicEngine`, which additionally patches the prepared
artifacts per mutation and invalidates the cache selectively.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable

from ..baselines.naive import NaiveEnumerator
from ..baselines.quickplus import QuickPlus
from ..core.dcfastqc import DCFastQC, DEFAULT_MAX_ROUNDS
from ..core.fastqc import FastQC
from ..core.stats import SearchStatistics
from ..graph.graph import Graph
from ..obs.trace import NULL_TRACER
from ..quasiclique.definitions import validate_parameters
from ..settrie.filter import filter_non_maximal
from .results import EnumerationResult

#: Algorithms usable as the MQCE-S1 stage.
ALGORITHMS = ("dcfastqc", "fastqc", "quickplus", "naive")


def resolve_algorithm(algorithm: str) -> str:
    """Map the spec-level ``"auto"`` to the one-shot default MQCE-S1 algorithm."""
    return "dcfastqc" if algorithm == "auto" else algorithm


def canonical_order(quasi_cliques) -> list[frozenset]:
    """Deterministic result order: decreasing size, then sorted string labels."""
    return sorted(quasi_cliques, key=lambda h: (-len(h), sorted(map(str, h))))


def build_enumerator(graph: Graph, gamma: float, theta: int, algorithm: str = "dcfastqc",
                     branching: str | None = None, framework: str = "dc",
                     kernel: str = "ledger",
                     max_rounds: int = DEFAULT_MAX_ROUNDS,
                     maximality_filter: bool = True,
                     on_output: Callable[[frozenset], None] | None = None,
                     should_stop: Callable[[], bool] | None = None,
                     progress=None, tracer=None):
    """Construct (but do not run) the requested MQCE-S1 enumerator.

    ``branching`` defaults to ``"hybrid"`` for FastQC/DCFastQC and ``"se"`` for
    Quick+, matching the paper's configurations.  ``kernel`` selects the
    execution kernel shared by all three branch-and-bound algorithms
    (``"ledger"`` incremental branch states or the mask-based
    ``"reference"``); only the naive baseline has no kernelized form.
    ``on_output`` and ``should_stop`` feed the streaming/cancellation path;
    the naive baseline ignores both (it materialises its answer in one
    exhaustive pass).  ``progress`` is an optional
    :class:`repro.obs.ProgressTicker` branch-tick hook and ``tracer`` an
    optional :class:`repro.obs.Tracer` (the DC driver records decompose /
    shrink / subproblem spans); the naive baseline ignores both as well.
    """
    validate_parameters(gamma, theta)
    if algorithm == "dcfastqc":
        return DCFastQC(graph, gamma, theta, branching=branching or "hybrid",
                        framework=framework, kernel=kernel, max_rounds=max_rounds,
                        maximality_filter=maximality_filter,
                        on_output=on_output, should_stop=should_stop,
                        progress=progress, tracer=tracer)
    if algorithm == "fastqc":
        return FastQC(graph, gamma, theta, branching=branching or "hybrid",
                      kernel=kernel, maximality_filter=maximality_filter,
                      on_output=on_output, should_stop=should_stop,
                      progress=progress)
    if algorithm == "quickplus":
        return QuickPlus(graph, gamma, theta, branching=branching or "se",
                         kernel=kernel,
                         on_output=on_output, should_stop=should_stop,
                         progress=progress)
    if algorithm == "naive":
        return NaiveEnumerator(graph, gamma, theta)
    raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def enumerate_candidate_quasi_cliques(graph: Graph, gamma: float, theta: int,
                                      algorithm: str = "dcfastqc", **kwargs
                                      ) -> tuple[list[frozenset], SearchStatistics]:
    """Solve MQCE-S1 only: return a superset of all large MQCs plus statistics."""
    enumerator = build_enumerator(graph, gamma, theta, algorithm=algorithm, **kwargs)
    candidates = enumerator.enumerate()
    return candidates, enumerator.statistics


def run_enumeration(graph: Graph, spec,
                    should_stop: Callable[[], bool] | None = None,
                    tracer=None, progress=None) -> EnumerationResult:
    """Run one full MQCE enumeration described by a :class:`repro.api.QuerySpec`.

    This is the canonical execution path for the ``enumerate`` workload: it
    builds the MQCE-S1 enumerator from the spec's execution knobs, filters the
    candidates with the set-trie (MQCE-S2), and packs everything into an
    :class:`EnumerationResult` — content-identical to what the deprecated
    kwargs entry point :func:`find_maximal_quasi_cliques` returns for the same
    parameters.

    ``spec.algorithm="auto"`` resolves to DCFastQC here (no planner is
    involved at this level; the engine plans before calling in).  A spec
    ``time_limit`` — or an explicit ``should_stop`` predicate, which takes
    precedence — stops the enumeration cooperatively; the result is then
    marked ``truncated`` and holds the maximal sets of the candidates found
    so far (a best-effort subset).

    ``tracer`` records the two phases as ``enumerate`` / ``filter`` spans
    (and passes through to the DC driver's decompose/shrink spans);
    ``progress`` receives branch ticks.  Both default to disabled.
    """
    algorithm = resolve_algorithm(spec.algorithm)
    framework = spec.framework if spec.framework is not None else "dc"
    if should_stop is None and spec.time_limit is not None:
        deadline = time.monotonic() + spec.time_limit
        should_stop = lambda: time.monotonic() >= deadline  # noqa: E731
    obs = tracer if tracer is not None else NULL_TRACER
    enumerator = build_enumerator(graph, spec.gamma, spec.theta, algorithm=algorithm,
                                  branching=spec.branching, framework=framework,
                                  kernel=spec.kernel, max_rounds=spec.max_rounds,
                                  maximality_filter=spec.maximality_filter,
                                  should_stop=should_stop,
                                  progress=progress, tracer=tracer)
    with obs.span("enumerate", stats=lambda: enumerator.statistics,
                  algorithm=algorithm) as enumerate_span:
        candidates = enumerator.enumerate()
        enumerate_span.annotate(candidates=len(candidates))
    enumeration_seconds = enumerate_span.seconds

    with obs.span("filter", theta=spec.theta) as filter_span:
        maximal = filter_non_maximal(candidates, theta=spec.theta)
        filter_span.annotate(maximal=len(maximal))
    filtering_seconds = filter_span.seconds

    return EnumerationResult(
        maximal_quasi_cliques=canonical_order(maximal),
        candidate_quasi_cliques=list(candidates),
        algorithm=algorithm,
        gamma=spec.gamma,
        theta=spec.theta,
        search_statistics=enumerator.statistics,
        enumeration_seconds=enumeration_seconds,
        filtering_seconds=filtering_seconds,
        truncated=getattr(enumerator, "stopped", False),
    )


def find_maximal_quasi_cliques(graph: Graph, gamma: float, theta: int,
                               algorithm: str = "dcfastqc",
                               branching: str | None = None, framework: str = "dc",
                               max_rounds: int = DEFAULT_MAX_ROUNDS,
                               maximality_filter: bool = True) -> EnumerationResult:
    """Enumerate every maximal gamma-quasi-clique of size >= theta (full MQCE).

    .. deprecated::
        This kwargs entry point is superseded by the declarative
        :class:`repro.api.QuerySpec` API::

            from repro.api import Q
            result = Q(graph).gamma(0.9).theta(5).run()

        It now delegates to :func:`run_enumeration` and returns an identical
        result, emitting a :class:`DeprecationWarning`.

    Parameters
    ----------
    graph:
        Input graph (:class:`repro.graph.Graph`).
    gamma:
        Degree fraction threshold in ``[0.5, 1]``.
    theta:
        Minimum quasi-clique size (positive integer).
    algorithm:
        MQCE-S1 stage: ``"dcfastqc"`` (default), ``"fastqc"``, ``"quickplus"``
        or ``"naive"``.
    branching, framework, max_rounds, maximality_filter:
        Advanced knobs forwarded to the chosen algorithm (see
        :func:`build_enumerator`).

    Returns
    -------
    EnumerationResult
        With the maximal quasi-cliques, the candidate (pre-filter) set, timing
        and branch-and-bound statistics.
    """
    warnings.warn(
        "find_maximal_quasi_cliques() is deprecated; build a repro.api.QuerySpec "
        "(e.g. Q(graph).gamma(...).theta(...).run()) or use MQCEEngine.query()",
        DeprecationWarning, stacklevel=2)
    from ..api.spec import QuerySpec

    spec = QuerySpec(gamma=gamma, theta=theta, algorithm=algorithm,
                     branching=branching, framework=framework,
                     max_rounds=max_rounds, maximality_filter=maximality_filter)
    return run_enumeration(graph, spec)
