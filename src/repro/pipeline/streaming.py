"""Incremental delivery of maximal quasi-cliques (streaming MQCE).

The batch pipeline (:func:`repro.pipeline.mqce.run_enumeration`) materialises
every MQCE-S1 candidate, filters, and only then returns — interactive and
top-k consumers pay for the whole enumeration before seeing the first answer.
This module streams instead: :class:`QuasiCliqueStream` is an iterator that
yields maximal quasi-cliques *while the enumeration is still running*, with
budget enforcement (``time_limit`` / ``max_results``) and cooperative
cancellation (:meth:`QuasiCliqueStream.cancel`).

Why early yields are safe
-------------------------
DCFastQC solves one subproblem per vertex of its ordering; every output of
subproblem ``i`` contains the root ``v_i`` and no earlier-ordered vertex
(:meth:`repro.core.dcfastqc.DCFastQC.iter_candidate_batches`).  Any proper
superset ``H`` of such an output ``X`` contains ``X``'s vertices, so ``H``'s
lowest-ordered vertex is ``v_j`` with ``j <= i`` — meaning ``H`` is emitted in
subproblem ``j``, *no later than* ``X``'s own subproblem.  Therefore, once
subproblem ``i`` completes, each of its outputs is maximal **iff** no proper
superset exists among the candidates seen so far, which an incrementally
maintained set-trie answers exactly.  Confirmed sets can be yielded
immediately and are never retracted.

For algorithms without the divide-and-conquer structure (plain FastQC,
Quick+, the naive baseline) no such barrier exists, so the stream falls back
to a terminal flush: enumerate fully (still honouring the budgets
cooperatively), filter once, then yield.  Budget semantics under truncation:
sets yielded by the incremental path are always genuinely maximal in the full
answer; a time-truncated terminal flush yields the maximal sets of the
candidates found so far (best-effort).
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from ..core.dcfastqc import DEFAULT_MAX_ROUNDS
from ..graph.graph import Graph
from ..settrie.settrie import SetTrie
from ..settrie.filter import filter_non_maximal
from .mqce import build_enumerator, canonical_order, resolve_algorithm


class QueryBudget:
    """Shared budget state between a stream and its enumerator.

    ``expired()`` is the cooperative-stop predicate handed to the
    branch-and-bound engines: it turns true when the wall-clock deadline
    passes, the result quota is met, or :meth:`cancel` was called.
    """

    def __init__(self, time_limit: float | None = None,
                 max_results: int | None = None) -> None:
        self.deadline = None if time_limit is None else time.monotonic() + time_limit
        self.max_results = max_results
        self.delivered = 0
        self.cancelled = False

    def quota_reached(self) -> bool:
        return self.max_results is not None and self.delivered >= self.max_results

    def expired(self) -> bool:
        if self.cancelled or self.quota_reached():
            return True
        return self.deadline is not None and time.monotonic() >= self.deadline

    def cancel(self) -> None:
        self.cancelled = True


class QuasiCliqueStream(Iterator[frozenset]):
    """An iterator of maximal gamma-quasi-cliques, delivered incrementally.

    Parameters mirror :func:`repro.pipeline.mqce.build_enumerator` plus the
    budgets.  Progress is observable while iterating:

    ``candidates_seen``
        MQCE-S1 candidates observed so far.
    ``delivered``
        Maximal quasi-cliques yielded so far.
    ``subproblems_completed``
        Divide-and-conquer subproblems fully processed (DC path only).
    ``finished``
        True once the underlying enumeration ran to completion and every
        maximal set was yielded.
    ``truncated``
        True when a budget or :meth:`cancel` stopped the stream early.
    """

    def __init__(self, graph: Graph, gamma: float, theta: int, *,
                 algorithm: str = "auto", branching: str | None = None,
                 framework: str | None = None,
                 max_rounds: int = DEFAULT_MAX_ROUNDS,
                 maximality_filter: bool = True,
                 time_limit: float | None = None,
                 max_results: int | None = None,
                 progress=None, tracer=None) -> None:
        self.algorithm = resolve_algorithm(algorithm)
        self.framework = framework if framework is not None else "dc"
        self.budget = QueryBudget(time_limit, max_results)
        self.enumerator = build_enumerator(
            graph, gamma, theta, algorithm=self.algorithm, branching=branching,
            framework=self.framework, max_rounds=max_rounds,
            maximality_filter=maximality_filter, should_stop=self.budget.expired,
            progress=progress, tracer=tracer)
        self.theta = theta
        self.candidates: list[frozenset] = []
        self.subproblems_completed = 0
        self.finished = False
        self.truncated = False
        if self.algorithm == "dcfastqc" and self.framework in ("dc", "basic-dc"):
            self._iterator = self._incremental()
        else:
            self._iterator = self._terminal_flush()

    # ------------------------------------------------------------------
    # Iterator protocol and control
    # ------------------------------------------------------------------
    def __iter__(self) -> "QuasiCliqueStream":
        return self

    def __next__(self) -> frozenset:
        return next(self._iterator)

    def cancel(self) -> None:
        """Request cooperative cancellation; the next branch boundary stops."""
        self.budget.cancel()

    @property
    def candidates_seen(self) -> int:
        return len(self.candidates)

    @property
    def delivered(self) -> int:
        return self.budget.delivered

    @property
    def statistics(self):
        """The underlying enumerator's branch-and-bound counters (live)."""
        return self.enumerator.statistics

    # ------------------------------------------------------------------
    # Delivery paths
    # ------------------------------------------------------------------
    def _incremental(self) -> Iterator[frozenset]:
        """DC path: confirm and yield each subproblem's outputs as it completes."""
        trie = SetTrie()
        for batch in self.enumerator.iter_candidate_batches():
            self.candidates.extend(batch)
            for candidate in batch:
                trie.insert(candidate)
            if self.enumerator.stopped:
                # The last batch may be partial (a superset of one of its
                # members could still be unexplored), so it is not confirmed.
                self.truncated = True
                return
            self.subproblems_completed += 1
            # Largest first: a batch member never eliminates a larger one.
            for candidate in sorted(batch, key=len, reverse=True):
                if trie.exists_superset(candidate, proper=True):
                    continue
                self.budget.delivered += 1
                yield candidate
                if self.budget.quota_reached() or self.budget.cancelled:
                    self.truncated = True
                    return
        if self.enumerator.stopped:
            self.truncated = True
        else:
            self.finished = True

    def _terminal_flush(self) -> Iterator[frozenset]:
        """Non-DC path: enumerate fully (budget-aware), filter once, then yield."""
        self.candidates = self.enumerator.enumerate()
        self.truncated = getattr(self.enumerator, "stopped", False)
        maximal = filter_non_maximal(self.candidates, theta=self.theta)
        for clique in canonical_order(maximal):
            if self.budget.quota_reached() or self.budget.cancelled:
                self.truncated = True
                return
            self.budget.delivered += 1
            yield clique
        if not self.truncated:
            self.finished = True


def stream_maximal_quasi_cliques(graph: Graph, gamma: float, theta: int,
                                 **options) -> QuasiCliqueStream:
    """Functional convenience: a :class:`QuasiCliqueStream` over ``graph``.

    ``options`` are the keyword parameters of :class:`QuasiCliqueStream`
    (algorithm, branching, framework, max_rounds, maximality_filter,
    time_limit, max_results).
    """
    return QuasiCliqueStream(graph, gamma, theta, **options)
