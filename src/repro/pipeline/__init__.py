"""End-to-end MQCE pipeline (MQCE-S1 + MQCE-S2) and its result objects."""

from .mqce import (
    ALGORITHMS,
    build_enumerator,
    enumerate_candidate_quasi_cliques,
    find_maximal_quasi_cliques,
)
from .results import EnumerationResult

__all__ = [
    "ALGORITHMS",
    "build_enumerator",
    "enumerate_candidate_quasi_cliques",
    "find_maximal_quasi_cliques",
    "EnumerationResult",
]
