"""End-to-end MQCE pipeline (MQCE-S1 + MQCE-S2), batch and streaming."""

from .mqce import (
    ALGORITHMS,
    build_enumerator,
    canonical_order,
    enumerate_candidate_quasi_cliques,
    find_maximal_quasi_cliques,
    resolve_algorithm,
    run_enumeration,
)
from .results import EnumerationResult
from .streaming import QuasiCliqueStream, QueryBudget, stream_maximal_quasi_cliques

__all__ = [
    "ALGORITHMS",
    "build_enumerator",
    "canonical_order",
    "enumerate_candidate_quasi_cliques",
    "find_maximal_quasi_cliques",
    "resolve_algorithm",
    "run_enumeration",
    "EnumerationResult",
    "QuasiCliqueStream",
    "QueryBudget",
    "stream_maximal_quasi_cliques",
]
