"""Process-global metrics: counters, gauges, bounded histograms.

A :class:`MetricsRegistry` holds named metric families, each with labelled
samples.  Engine modules create their handles once at import time::

    from ..obs.metrics import REGISTRY
    _HITS = REGISTRY.counter("repro_cache_hits_total", "Result-cache hits")
    ...
    _HITS.inc()

Histograms reuse :class:`repro.core.stats.SizeHistogram` (count / total / max
plus log2 buckets), so they stay O(log max) per label set no matter how long
the process lives.  :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text exposition format (the page a future ``repro serve`` scrape
endpoint returns; available today via ``repro engine stats --prometheus``),
and :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge` move
metric deltas across process boundaries — :class:`ParallelDCFastQC` workers
snapshot a local registry and the parent merges it into :data:`REGISTRY`.
"""

from __future__ import annotations

from ..core.stats import SizeHistogram

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricFamily:
    """Base: one named metric with labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.samples: dict[_LabelKey, object] = {}

    def value(self, **labels):
        """The sample value for ``labels`` (0 / None when never touched)."""
        return self.samples.get(_label_key(labels), 0)

    def clear(self) -> None:
        self.samples.clear()


class Counter(MetricFamily):
    """Monotonically increasing count (by convention named ``*_total``)."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels) -> None:
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0) + amount


class Gauge(MetricFamily):
    """A value that can go up and down (sizes, versions, configuration)."""

    kind = "gauge"

    def set(self, value: int | float, **labels) -> None:
        self.samples[_label_key(labels)] = value

    def inc(self, amount: int | float = 1, **labels) -> None:
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0) + amount

    def dec(self, amount: int | float = 1, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(MetricFamily):
    """A bounded size distribution, one :class:`SizeHistogram` per label set."""

    kind = "histogram"

    def observe(self, size: int, **labels) -> None:
        key = _label_key(labels)
        histogram = self.samples.get(key)
        if histogram is None:
            histogram = self.samples[key] = SizeHistogram()
        histogram.record(size)

    def value(self, **labels) -> SizeHistogram:
        key = _label_key(labels)
        histogram = self.samples.get(key)
        if histogram is None:
            histogram = self.samples[key] = SizeHistogram()
        return histogram


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metric families.

    Families are created on first request and persist for the registry's
    lifetime; :meth:`reset` clears sample values but keeps the family objects,
    so module-level handles stay valid across test isolation boundaries.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Family accessors (get-or-create)
    # ------------------------------------------------------------------
    def _family(self, kind: str, name: str, help: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _KINDS[kind](name, help)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, requested as {kind}")
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family("counter", name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family("gauge", name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._family("histogram", name, help)  # type: ignore[return-value]

    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Zero every sample (family objects survive; handles stay valid)."""
        for family in self._families.values():
            family.clear()

    # ------------------------------------------------------------------
    # Cross-process transport
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON/pickle-safe dump of every family, for :meth:`merge`."""
        out: dict = {}
        for family in self.families():
            samples = []
            for key, value in family.samples.items():
                if isinstance(value, SizeHistogram):
                    value = {"count": value.count, "total": value.total,
                             "max": value.max,
                             "buckets": dict(value.buckets)}
                samples.append([list(key), value])
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "samples": samples}
        return out

    def merge(self, snapshot: dict) -> None:
        """Accumulate a :meth:`snapshot` (e.g. from a worker process).

        Counters and histograms add; gauges take the incoming value
        (last-write-wins, the useful semantics for worker-reported state).
        """
        for name, family_dump in snapshot.items():
            kind = family_dump["kind"]
            family = self._family(kind, name, family_dump.get("help", ""))
            for raw_key, value in family_dump["samples"]:
                key = tuple((str(k), str(v)) for k, v in raw_key)
                if kind == "histogram":
                    incoming = SizeHistogram(
                        count=value["count"], total=value["total"],
                        max=value["max"],
                        buckets={int(k): v for k, v in value["buckets"].items()})
                    existing = family.samples.get(key)
                    if existing is None:
                        family.samples[key] = incoming
                    else:
                        existing.merge(incoming)
                elif kind == "gauge":
                    family.samples[key] = value
                else:
                    family.samples[key] = family.samples.get(key, 0) + value

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A plain nested dict (labels joined as ``k=v`` strings) for JSON."""
        out: dict = {}
        for family in self.families():
            samples = {}
            for key, value in family.samples.items():
                label = ",".join(f"{k}={v}" for k, v in key) or ""
                if isinstance(value, SizeHistogram):
                    value = {"count": value.count, "total": value.total,
                             "max": value.max, "avg": value.average}
                samples[label] = value
            out[family.name] = {"kind": family.kind, "samples": samples}
        return out

    def render_prometheus(self, include_process: bool = True) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4).

        ``include_process`` appends point-in-time process gauges
        (``repro_process_peak_rss_bytes``, ``repro_process_current_rss_bytes``)
        sampled at render time, skipping whichever the platform cannot supply.
        """
        lines: list[str] = []
        for family in self.families():
            if not family.samples:
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {_escape(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.samples):
                value = family.samples[key]
                if isinstance(value, SizeHistogram):
                    lines.extend(_render_histogram(family.name, key, value))
                else:
                    lines.append(
                        f"{family.name}{_format_labels(key)} {_format_value(value)}")
        if include_process:
            from .process import current_rss_bytes, peak_rss_bytes

            for name, help_text, value in (
                ("repro_process_peak_rss_bytes",
                 "Peak resident set size of this process", peak_rss_bytes()),
                ("repro_process_current_rss_bytes",
                 "Current resident set size of this process",
                 current_rss_bytes()),
            ):
                if value is None:
                    continue
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_histogram(name: str, key: _LabelKey,
                      histogram: SizeHistogram) -> list[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one label set.

    The log2 bucket keyed ``k`` covers sizes ``[k, 2k - 1]`` (bucket 0 holds
    exactly size 0), so its inclusive upper bound is the Prometheus ``le``.
    """
    lines = []
    cumulative = 0
    for bucket in sorted(histogram.buckets):
        cumulative += histogram.buckets[bucket]
        upper = 0 if bucket == 0 else 2 * bucket - 1
        lines.append(f"{name}_bucket{_format_labels(key, (('le', str(upper)),))}"
                     f" {cumulative}")
    lines.append(f"{name}_bucket{_format_labels(key, (('le', '+Inf'),))}"
                 f" {histogram.count}")
    lines.append(f"{name}_sum{_format_labels(key)} {histogram.total}")
    lines.append(f"{name}_count{_format_labels(key)} {histogram.count}")
    return lines


#: The process-global registry every engine module instruments into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :data:`REGISTRY` (convenience accessor)."""
    return REGISTRY


def render_prometheus(include_process: bool = True) -> str:
    """Render the process-global registry (see the registry method)."""
    return REGISTRY.render_prometheus(include_process=include_process)
