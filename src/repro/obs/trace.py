"""Per-query phase tracing: nestable spans with counter deltas.

A :class:`Tracer` records a tree of named :class:`Span`\\ s — ``prepare``,
``plan``, ``cache``, ``decompose``, ``shrink``, ``enumerate``, ``filter`` in
the engine paths — each holding wall-clock seconds, free-form attributes, and
the delta of every integer :class:`~repro.core.stats.SearchStatistics`
counter that changed while the span was open.  Finished traces export as a
plain nested dict (:meth:`Tracer.as_dict`) or in Chrome trace-event format
(:meth:`Tracer.chrome_trace`), loadable in Perfetto / ``chrome://tracing``.

The disabled path is :data:`NULL_TRACER`: its spans still measure elapsed
seconds (callers reuse ``span.seconds`` for result timing fields, which is
what lets the span API replace the repo's hand-rolled ``perf_counter()``
pairs) but retain nothing — no stack, no counter snapshots, no event tree —
so instrumented code calls ``tracer.span(...)`` unconditionally instead of
branching on an enabled flag at every site.  The hot branch loop inside
:func:`repro.core.kernel.depth_first_enumerate` is never spanned at all;
spans sit at phase and subproblem granularity only.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

#: The span vocabulary used by the engine/execute/pipeline paths.  Extra span
#: names (e.g. per-subproblem ``subproblem`` spans) are allowed; these are the
#: ones tooling may rely on.
TRACE_PHASES = ("prepare", "plan", "cache", "decompose", "shrink",
                "enumerate", "filter")


def counter_snapshot(stats) -> dict[str, int]:
    """The integer counters of a statistics object, as a plain dict.

    Works for any object whose interesting fields are plain ``int``
    attributes (``SearchStatistics``, ``UpdateStats``); nested histograms and
    other non-int fields are skipped.  ``None`` snapshots to ``{}``.
    """
    if stats is None:
        return {}
    return {key: value for key, value in vars(stats).items()
            if type(value) is int}


class Span:
    """One timed region.  Use as a context manager via :meth:`Tracer.span`.

    ``seconds`` accumulates *active* time only: :meth:`pause` /
    :meth:`resume` let long-lived spans (a stream suspended at a yield) stop
    the clock while control is outside the traced region.  When constructed
    with a ``stats`` object, the span snapshots its integer counters on entry
    and stores the nonzero deltas in ``counters`` on exit.  ``stats`` may
    also be a zero-argument callable resolved at entry and exit — for
    enumerators that swap in a fresh statistics object when a run starts.
    """

    __slots__ = ("name", "attributes", "seconds", "counters", "children",
                 "_tracer", "_stats", "_before", "_clock", "_begin", "_finish")

    def __init__(self, tracer: "Tracer", name: str, stats=None,
                 attributes: dict | None = None) -> None:
        self._tracer = tracer
        self.name = name
        self._stats = stats
        self.attributes = attributes if attributes is not None else {}
        self.seconds = 0.0
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self._before = None
        self._clock = None
        self._begin = None
        self._finish = None

    def _resolve_stats(self):
        stats = self._stats
        return stats() if callable(stats) else stats

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer.enabled:
            tracer._push(self)
            if self._stats is not None:
                self._before = counter_snapshot(self._resolve_stats())
        self._begin = self._clock = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.pause()
        self._finish = perf_counter()
        tracer = self._tracer
        if tracer.enabled:
            if self._before is not None:
                after = counter_snapshot(self._resolve_stats())
                self.counters = {
                    key: after[key] - before
                    for key, before in self._before.items()
                    if after.get(key, before) != before
                }
            tracer._pop(self)
        return False

    def pause(self) -> None:
        """Stop the active clock (e.g. while a stream is suspended at a yield)."""
        if self._clock is not None:
            self.seconds += perf_counter() - self._clock
            self._clock = None

    def resume(self) -> None:
        """Restart the active clock after a :meth:`pause`."""
        if self._clock is None:
            self._clock = perf_counter()

    def elapsed(self) -> float:
        """Active seconds so far, including the currently running stretch."""
        if self._clock is None:
            return self.seconds
        return self.seconds + (perf_counter() - self._clock)

    def annotate(self, **attributes) -> "Span":
        """Attach attributes after entry (e.g. counts known only at the end)."""
        self.attributes.update(attributes)
        return self

    def as_dict(self) -> dict:
        data = {"name": self.name, "seconds": self.seconds}
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.children:
            data["children"] = [child.as_dict() for child in self.children]
        return data


class Tracer:
    """Collects a tree of spans for one query (or one harness run).

    Spans nest by lexical scope: a span entered while another is open becomes
    its child.  Completed root spans land in :attr:`spans` in completion
    order.  A tracer is single-threaded state — use one per query; merge at
    the result level if needed.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._origin = perf_counter()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, stats=None, **attributes) -> Span:
        """A new span; enter it with ``with tracer.span("enumerate", ...):``."""
        return Span(self, name, stats, attributes or None)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: out-of-order generator exits
            self._stack.remove(span)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.spans.append(span)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def window_seconds(self) -> float:
        """Wall-clock from the first root span's start to the last one's end."""
        roots = [span for span in self.spans if span._begin is not None]
        if not roots:
            return 0.0
        begin = min(span._begin for span in roots)
        end = max(span._finish if span._finish is not None
                  else span._begin + span.seconds for span in roots)
        return end - begin

    def coverage(self) -> float:
        """Fraction of the observed window covered by root spans (0..1)."""
        window = self.window_seconds()
        if window <= 0.0:
            return 1.0 if self.spans else 0.0
        return min(1.0, sum(span.seconds for span in self.spans) / window)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "window_seconds": self.window_seconds(),
            "coverage": self.coverage(),
            "spans": [span.as_dict() for span in self.spans],
        }

    def chrome_trace(self, pid: int | None = None) -> dict:
        """The trace as Chrome trace-event JSON (complete ``"X"`` events).

        Timestamps are microseconds relative to tracer creation; a paused
        span is emitted with its active duration, so its bar may end before
        its children's wall-clock span does.
        """
        pid = os.getpid() if pid is None else pid
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "repro"},
        }]

        def emit(span: Span) -> None:
            args = dict(span.attributes)
            if span.counters:
                args["counters"] = dict(span.counters)
            events.append({
                "name": span.name, "ph": "X", "cat": "repro",
                "ts": round((span._begin - self._origin) * 1e6, 3),
                "dur": round(span.seconds * 1e6, 3),
                "pid": pid, "tid": 0, "args": args,
            })
            for child in span.children:
                emit(child)

        for root in self.spans:
            emit(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str, format: str = "chrome") -> None:
        """Serialise the trace to ``path`` as ``"chrome"`` or plain ``"json"``."""
        if format not in ("chrome", "json"):
            raise ValueError(f"unknown trace format {format!r}")
        payload = self.chrome_trace() if format == "chrome" else self.as_dict()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


class _NullTracer(Tracer):
    """The disabled tracer: spans time themselves but nothing is retained."""

    enabled = False

    def _push(self, span: Span) -> None:  # pragma: no cover - never called
        pass

    def _pop(self, span: Span) -> None:  # pragma: no cover - never called
        pass


#: Shared disabled tracer.  ``tracer = trace or NULL_TRACER`` is the idiom at
#: every instrumented entry point.
NULL_TRACER = _NullTracer()


# ----------------------------------------------------------------------
# Chrome trace-event schema validation (used by tests and the CI perf-smoke
# job on the artifact emitted by `repro query --trace`).
# ----------------------------------------------------------------------
def validate_chrome_trace(payload) -> list[str]:
    """Schema-check a Chrome trace-event payload; return a list of problems.

    An empty list means the payload is loadable by Perfetto/chrome://tracing:
    a ``traceEvents`` array of objects, each with a string ``name``, a phase
    ``ph`` of ``"X"`` (complete) or ``"M"`` (metadata), integer ``pid`` /
    ``tid``, and — for complete events — non-negative numeric ``ts`` and
    ``dur``.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["trace payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}.name is not a non-empty string")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            errors.append(f"{where}.ph is {phase!r}, expected 'X' or 'M'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where}.{field} is not an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}.{field} is not a non-negative number")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}.args is not an object")
    return errors


def validate_chrome_trace_file(path: str) -> dict:
    """Load ``path``, validate it, and raise ``ValueError`` on any problem."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    errors = validate_chrome_trace(payload)
    if errors:
        raise ValueError("invalid Chrome trace: " + "; ".join(errors))
    return payload
