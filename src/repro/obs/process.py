"""Process-level measurements (peak RSS) with graceful degradation.

This module is a leaf: it imports nothing from :mod:`repro`, so low-level
modules (e.g. :mod:`repro.core.stats`) may call into it lazily without
creating an import cycle with the rest of the observability layer.
"""

from __future__ import annotations

import sys

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None


def peak_rss_bytes() -> int | None:
    """The process's peak resident set size in bytes, or None when unknown.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux and in bytes on
    macOS; both are normalised to bytes here.  On platforms without the
    ``resource`` module (Windows) this is a graceful no-op returning None.
    """
    if _resource is None:  # pragma: no cover - platform fallback
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(usage)
    return int(usage * 1024)


def current_rss_bytes() -> int | None:
    """The process's current resident set size in bytes (Linux), else None.

    Reads ``/proc/self/statm``; returns None anywhere that file is absent.
    Cheap enough to call at metric-render time.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        import os

        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return None
