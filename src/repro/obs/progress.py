"""Progress hooks for the work-stack enumeration driver.

:func:`repro.core.kernel.depth_first_enumerate` accepts a
:class:`ProgressTicker`; the driver calls :meth:`ProgressTicker.on_branch`
once per branch expansion, which is nearly free (an increment and a modulo)
until the configured period elapses, at which point the user callback fires
with a :class:`ProgressEvent` — elapsed seconds, branches/sec, current stack
depth, and a live snapshot of the enumerator's
:class:`~repro.core.stats.SearchStatistics` counters.

A truthy callback return requests cooperative cancellation: the ticker sets
``cancelled`` and the driver unwinds, composing with — not replacing — any
``should_stop`` predicate already installed.  The enumeration algorithms
(:class:`~repro.core.fastqc.FastQC`, :class:`~repro.core.dcfastqc.DCFastQC`,
:class:`~repro.baselines.quickplus.QuickPlus`) take a ``progress=`` ticker
and mark themselves ``stopped`` when it cancels, so truncation is reported
exactly as it is for budget expiry.
"""

from __future__ import annotations

import sys
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

from .trace import counter_snapshot

#: Default callback period, in branch expansions.
DEFAULT_EVERY = 4096


@dataclass
class ProgressEvent:
    """One heartbeat from the enumeration driver."""

    branches: int
    elapsed: float
    branches_per_sec: float
    stack_depth: int
    counters: dict[str, int] = field(default_factory=dict)


class ProgressTicker:
    """Periodic branch-count callback, shared across an enumeration.

    ``callback(event)`` fires every ``every`` branch expansions; returning a
    truthy value cancels the enumeration cooperatively.  One ticker may span
    several engines (DCFastQC hands the same ticker to each per-subproblem
    FastQC instance), so ``branches`` counts the whole run;
    :meth:`attach_statistics` points the live counter snapshot at whichever
    statistics object aggregates the run.
    """

    def __init__(self, callback: Callable[[ProgressEvent], object],
                 every: int = DEFAULT_EVERY) -> None:
        if every < 1:
            raise ValueError(f"progress period must be >= 1, got {every}")
        self.callback = callback
        self.every = every
        self.branches = 0
        self.events_fired = 0
        self.cancelled = False
        self._statistics = None
        self._start = perf_counter()

    def attach_statistics(self, statistics) -> "ProgressTicker":
        """Use ``statistics`` for the live counter snapshot in events.

        First attachment wins: DCFastQC attaches its run-wide aggregate
        before handing the ticker to per-subproblem engines, whose own
        (partial) statistics must not displace it.
        """
        if self._statistics is None:
            self._statistics = statistics
        return self

    def on_branch(self, stack_depth: int) -> bool:
        """Driver hook: count one expansion; fire the callback on period.

        Returns True when cancellation has been requested (now or earlier),
        letting the driver unwind immediately.
        """
        self.branches += 1
        if self.branches % self.every:
            return self.cancelled
        elapsed = perf_counter() - self._start
        event = ProgressEvent(
            branches=self.branches,
            elapsed=elapsed,
            branches_per_sec=self.branches / elapsed if elapsed > 0 else 0.0,
            stack_depth=stack_depth,
            counters=counter_snapshot(self._statistics),
        )
        self.events_fired += 1
        if self.callback(event):
            self.cancelled = True
        return self.cancelled


def heartbeat(every: int = DEFAULT_EVERY, stream=None,
              prefix: str = "progress") -> ProgressTicker:
    """A ticker that prints one status line per period (stderr by default).

    Example line::

        progress: 8192 branches in 0.31s (26.4k branches/s, depth 7, 41 outputs)
    """
    out = sys.stderr if stream is None else stream

    def emit(event: ProgressEvent) -> None:
        outputs = event.counters.get("outputs", 0)
        print(f"{prefix}: {event.branches} branches in {event.elapsed:.2f}s "
              f"({event.branches_per_sec / 1000:.1f}k branches/s, "
              f"depth {event.stack_depth}, {outputs} outputs)",
              file=out, flush=True)

    return ProgressTicker(emit, every=every)
