"""Unified observability layer: tracing, metrics, progress, process stats.

Three independent instruments, all designed so the *disabled* path costs
nothing on the hot branch loop:

Tracing (:mod:`repro.obs.trace`)
    A per-query :class:`Tracer` records nestable context-manager spans
    (``prepare`` / ``plan`` / ``cache`` / ``decompose`` / ``shrink`` /
    ``enumerate`` / ``filter``) with wall-clock seconds and per-span
    :class:`~repro.core.stats.SearchStatistics` counter deltas, exporting
    plain JSON or Chrome trace-event format (Perfetto-loadable)::

        from repro.obs import Tracer
        tracer = Tracer()
        result = engine.query(graph, spec, trace=tracer)
        tracer.write("trace.json")          # chrome://tracing format

    Same thing from the CLI: ``repro query ... --trace trace.json``.  When no
    tracer is passed, code paths run against :data:`NULL_TRACER`, whose spans
    still measure elapsed seconds (the result objects need them) but retain
    no events and take no counter snapshots.

Metrics (:mod:`repro.obs.metrics`)
    A process-global :data:`REGISTRY` of counters, gauges and bounded
    histograms fed by the result cache, the query planner, the dynamic
    engine's invalidation pass, streams and parallel workers.  Render it with
    :func:`render_prometheus` or ``repro engine stats --prometheus``.

Progress (:mod:`repro.obs.progress`)
    A :class:`ProgressTicker` hooks the work-stack driver and fires a
    callback every N branch expansions with elapsed time, branches/sec,
    stack depth and a live counter snapshot::

        from repro.obs import ProgressTicker
        ticker = ProgressTicker(lambda e: print(e.branches_per_sec), every=8192)
        engine.query(graph, spec, progress=ticker)

    Returning a truthy value from the callback cancels the enumeration
    cooperatively (composing with ``should_stop`` budgets); ``repro query
    --progress-every N`` prints a stderr heartbeat built on the same hook.

Process (:mod:`repro.obs.process`)
    :func:`peak_rss_bytes` / :func:`current_rss_bytes` with graceful
    degradation on platforms without ``resource`` or ``/proc``.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, REGISTRY,
                      get_registry, render_prometheus)
from .process import current_rss_bytes, peak_rss_bytes
from .progress import DEFAULT_EVERY, ProgressEvent, ProgressTicker, heartbeat
from .trace import (NULL_TRACER, Span, TRACE_PHASES, Tracer, counter_snapshot,
                    validate_chrome_trace, validate_chrome_trace_file)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "get_registry", "render_prometheus",
    "current_rss_bytes", "peak_rss_bytes",
    "DEFAULT_EVERY", "ProgressEvent", "ProgressTicker", "heartbeat",
    "NULL_TRACER", "Span", "TRACE_PHASES", "Tracer", "counter_snapshot",
    "validate_chrome_trace", "validate_chrome_trace_file",
]
