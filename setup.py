"""Package metadata and console entry points.

``pip install -e .`` exposes the library as ``repro`` and installs the
``repro`` / ``repro-mqce`` command-line tools (both run :func:`repro.cli.main`;
the short name is the documented one, the long name is kept for
backwards-compatibility with earlier scripts).
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="repro-mqce",
    version="1.2.0",
    description=(
        "Maximal quasi-clique enumeration (FastQC / DCFastQC / Quick+) with a "
        "declarative QuerySpec API, streaming enumeration and a persistent "
        "query engine: prepared graphs, cost-based plan selection and LRU "
        "result caching"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the inline annotations (QuerySpec and friends) type-check
    # downstream only when the marker ships with the wheel/sdist.
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-mqce=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Typing :: Typed",
    ],
)
