"""Figure 12: effect of the divide-and-conquer framework.

Compares DCFastQC (paper framework: degeneracy ordering + one/two-hop
shrinking), BDCFastQC (basic DC of earlier work: degree ordering + one-hop
shrinking) and plain FastQC (no decomposition) while varying gamma and theta.
Reproduced observations: both DC variants beat plain FastQC, and DCFastQC is at
least as fast as BDCFastQC thanks to the extra two-hop pruning.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure12_rows, format_table

from _bench_utils import attach_rows, run_once

CASES = [("enron", "gamma"), ("enron", "theta"), ("hyves", "gamma"), ("hyves", "theta")]


@pytest.mark.parametrize("name, vary", CASES)
def test_figure12_dc_frameworks(benchmark, name, vary):
    rows = run_once(benchmark, figure12_rows, names=(name,), vary=vary)
    attach_rows(benchmark, rows, keys=["dataset", "variant", "swept_parameter",
                                       "swept_value", "enumeration_seconds",
                                       "branches_explored", "maximal_count"])
    totals_time = {}
    totals_branches = {}
    for row in rows:
        totals_time[row["variant"]] = totals_time.get(row["variant"], 0.0) + row["enumeration_seconds"]
        totals_branches[row["variant"]] = (totals_branches.get(row["variant"], 0)
                                           + row["branches_explored"])
    benchmark.extra_info["total_seconds"] = {k: round(v, 3) for k, v in totals_time.items()}
    benchmark.extra_info["total_branches"] = totals_branches

    # Correctness: every framework finds the same number of MQCs at every value.
    by_value = {}
    for row in rows:
        by_value.setdefault(row["swept_value"], set()).add(row["maximal_count"])
    assert all(len(counts) == 1 for counts in by_value.values())

    # Shape: the DC frameworks dominate plain FastQC, and the full DC framework
    # is at least as fast as the basic one.
    assert totals_time["DCFastQC"] <= totals_time["FastQC"]
    assert totals_time["BDCFastQC"] <= totals_time["FastQC"]
    assert totals_time["DCFastQC"] <= totals_time["BDCFastQC"] * 1.2
    print()
    print(format_table(rows, columns=["dataset", "variant", "swept_value",
                                      "enumeration_seconds", "branches_explored"]))
    print(f"total seconds: { {k: round(v, 3) for k, v in totals_time.items()} }")
