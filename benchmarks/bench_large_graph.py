"""Large-graph tier guard: streaming CSR ingestion vs the dict builder.

The PR-8 acceptance bar: a generated power-law graph must ingest through
:func:`repro.graph.io.ingest_edge_list` and answer one budgeted enumerate
query with a peak-RSS delta under 25% of what the dict/full-width-bitmask
:class:`repro.Graph` needs for the same file and query (floor
``MIN_RSS_RATIO`` = 4x).  Peak RSS is a process-wide high-water mark, so the
measurement itself lives in ``scripts/bench_trajectory.py`` (the
``large-graph`` suite recorded into ``BENCH_core.json``) and runs each
backend in its own subprocess; this file reuses that suite so the benchmark
run and CI smoke assert the exact numbers the trajectory records.

By default the quick 2*10^4-vertex row runs (seconds, and small enough that
the query completes untruncated so answer parity is also checked end to
end).  Set ``REPRO_BENCH_FULL=1`` to measure the paper-scale 10^5-vertex
row instead — the same row the committed ``BENCH_core.json`` records.

Run with:  pytest benchmarks/bench_large_graph.py -q --benchmark-disable
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from bench_trajectory import (  # noqa: E402
    LARGE_GRAPH_FULL,
    LARGE_GRAPH_QUICK,
    run_large_graph_suite,
)

#: The ISSUE acceptance bar: CSR peak-RSS delta < 25% of the dict delta.
MIN_RSS_RATIO = 4.0

_cache: dict | None = None


def _suite_record() -> dict:
    """Run the large-graph trajectory suite once per pytest session."""
    global _cache
    if _cache is None:
        rows = (LARGE_GRAPH_FULL if os.environ.get("REPRO_BENCH_FULL")
                else LARGE_GRAPH_QUICK)
        _cache = run_large_graph_suite(rows, verbose=False)
    return _cache


def test_csr_peak_rss_under_quarter_of_dict():
    """Ingest + budgeted query: CSR must peak under 25% of the dict backend."""
    record = _suite_record()
    for name, row in record["datasets"].items():
        print(f"\n{name}: dict {row['dict_rss_mb']} MB vs CSR "
              f"{row['csr_rss_mb']} MB -> {row['speedup']}x "
              f"({row['vertices']} vertices, {row['edges']} edges)")
        assert row["speedup"] >= MIN_RSS_RATIO, (
            f"{name}: CSR peak-RSS delta is {row['csr_rss_mb']} MB vs dict "
            f"{row['dict_rss_mb']} MB — only {row['speedup']}x apart "
            f"(floor {MIN_RSS_RATIO}x = CSR under 25%)")


def test_ingest_is_not_slower_than_the_dict_builder():
    """Streaming ingestion must not pay for its memory savings with time.

    Generous 2x ceiling: the CSR build sorts the endpoint buffers, the dict
    builder never sorts, and both are dominated by line parsing; anything
    beyond 2x means the streaming path regressed structurally.
    """
    record = _suite_record()
    for name, row in record["datasets"].items():
        assert row["csr_ingest_s"] <= 2.0 * row["dict_ingest_s"] + 0.5, (
            f"{name}: CSR ingest took {row['csr_ingest_s']}s vs dict "
            f"{row['dict_ingest_s']}s")


def test_query_ran_within_its_budget():
    """The budgeted query must produce a result (possibly truncated)."""
    record = _suite_record()
    for name, row in record["datasets"].items():
        assert row["maximal"] >= 0
        if not row["truncated"]:
            # Untruncated on both backends: the suite already cross-checked
            # that the maximal counts agree; pin the quick row's answer.
            assert row["maximal"] > 0, (
                f"{name}: expected a non-empty untruncated answer at "
                f"gamma={row['gamma']} theta={row['theta']}")
