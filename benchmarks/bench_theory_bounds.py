"""Theorem 1 / Remark 2: the theoretical worst-case bounds per dataset.

Not a figure in the paper, but the quantitative core of its Section 4.5 / 5
analysis: FastQC's ``O(n * d * alpha_k^n)`` bound with ``alpha_k < 2`` always
beats Quick+'s ``O(n * d * 2^n)``, and on sparse graphs (``omega * d << n``)
DCFastQC's ``O(n * omega * d^2 * alpha_k^(omega d))`` bound beats both.  The
benchmark evaluates the three bounds (as log2 values — the raw numbers are
astronomically large) for every dataset analogue, using its real max degree and
degeneracy.
"""

from __future__ import annotations

import pytest

from repro.core import (
    branching_factor,
    dcfastqc_budget_bound,
    dcfastqc_worst_case_log2,
    fastqc_budget_bound,
    fastqc_worst_case_log2,
    quickplus_worst_case_log2,
)
from repro.datasets import dataset_names, get_spec
from repro.experiments import format_table
from repro.graph.statistics import graph_statistics

from _bench_utils import attach_rows, run_once


def theory_rows(name: str) -> list[dict]:
    spec = get_spec(name)
    graph = spec.build()
    stats = graph_statistics(graph)
    gamma = spec.default_gamma
    k_fastqc = fastqc_budget_bound(stats.vertex_count, gamma)
    k_dc = dcfastqc_budget_bound(stats.degeneracy, stats.max_degree, gamma)
    return [{
        "dataset": name,
        "vertices": stats.vertex_count,
        "max_degree": stats.max_degree,
        "degeneracy": stats.degeneracy,
        "gamma": gamma,
        "alpha_k_fastqc": round(branching_factor(k_fastqc), 4),
        "alpha_k_dcfastqc": round(branching_factor(k_dc), 4),
        "log2_bound_quickplus": round(quickplus_worst_case_log2(
            stats.vertex_count, stats.max_degree), 1),
        "log2_bound_fastqc": round(fastqc_worst_case_log2(
            stats.vertex_count, stats.max_degree, gamma), 1),
        "log2_bound_dcfastqc": round(dcfastqc_worst_case_log2(
            stats.vertex_count, stats.max_degree, stats.degeneracy, gamma), 1),
    }]


@pytest.mark.parametrize("name", dataset_names())
def test_theoretical_bounds(benchmark, name):
    rows = run_once(benchmark, theory_rows, name)
    attach_rows(benchmark, rows)
    row = rows[0]

    # Theorem 1: FastQC's bound is strictly below Quick+'s O*(2^n).  The gap per
    # vertex is tiny when tau(n) is large (alpha_k -> 2), so the comparison uses
    # the unrounded values rather than the display columns.
    k_fastqc = fastqc_budget_bound(row["vertices"], row["gamma"])
    assert branching_factor(k_fastqc) < 2.0
    raw_fastqc = fastqc_worst_case_log2(row["vertices"], row["max_degree"], row["gamma"])
    raw_quickplus = quickplus_worst_case_log2(row["vertices"], row["max_degree"])
    assert raw_fastqc < raw_quickplus
    # Section 5: on sparse graphs (omega * d << n) the DC bound is smaller still.
    if row["degeneracy"] * row["max_degree"] < row["vertices"]:
        raw_dcfastqc = dcfastqc_worst_case_log2(
            row["vertices"], row["max_degree"], row["degeneracy"], row["gamma"])
        assert raw_dcfastqc < raw_fastqc
    print()
    print(format_table(rows))
