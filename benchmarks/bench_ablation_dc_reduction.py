"""Ablation 2 ("other experiments"): effect of the DC framework on graph size.

The paper reports that the refined subgraphs G_i processed by DCFastQC are a
tiny fraction of the original graph (around 0.01% on the paper's huge inputs).
On the scaled-down analogues the absolute ratio is naturally larger, but the
benchmark records the same quantities: average initial and refined subproblem
sizes and the reduction ratio relative to the whole graph.
"""

from __future__ import annotations

import pytest

from repro.experiments import dc_reduction_rows, format_table

from _bench_utils import attach_rows, run_once

DATASETS = ("enron", "wordnet", "hyves", "pokec")


@pytest.mark.parametrize("name", DATASETS)
def test_dc_reduction(benchmark, name):
    rows = run_once(benchmark, dc_reduction_rows, names=(name,))
    attach_rows(benchmark, rows)
    row = rows[0]

    # The refined subproblems must be (much) smaller than the original graph
    # and no larger than the unrefined 2-hop subgraphs.
    assert row["avg_refined_size"] <= row["avg_initial_size"]
    assert row["max_refined_size"] <= row["vertices"]
    assert row["reduction_ratio"] <= 0.5, (
        f"DC reduction left subproblems at {row['reduction_ratio']:.0%} of the graph")
    print()
    print(format_table(rows, columns=["dataset", "vertices", "subproblems",
                                      "avg_initial_size", "avg_refined_size",
                                      "max_refined_size", "reduction_ratio",
                                      "enumeration_seconds"]))
