"""Figure 10: scalability on synthetic Erdos–Renyi graphs.

(a) varying the number of vertices and (b) varying the edge density, both at
gamma = 0.9.  Reproduced observations: DCFastQC beats Quick+ at every point,
and the running time grows with both the graph size and the density.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure10a_rows, figure10b_rows, format_table, speedup_over_baseline

from _bench_utils import attach_rows, run_once

VERTEX_COUNTS = (100, 200, 400)
EDGE_DENSITIES = (4.0, 8.0, 12.0)


@pytest.mark.parametrize("vertex_count", VERTEX_COUNTS)
def test_figure10a_vary_vertices(benchmark, vertex_count):
    rows = run_once(benchmark, figure10a_rows, vertex_counts=(vertex_count,),
                    edge_density=6.0, gamma=0.9, theta=6)
    attach_rows(benchmark, rows, keys=["vertex_count", "algorithm",
                                       "enumeration_seconds", "branches_explored",
                                       "maximal_count"])
    speedup = speedup_over_baseline(rows)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    counts = {row["algorithm"]: row["maximal_count"] for row in rows}
    assert counts["dcfastqc"] == counts["quickplus"]
    assert speedup >= 0.5
    print()
    print(format_table(rows, columns=["vertex_count", "algorithm",
                                      "enumeration_seconds", "branches_explored",
                                      "maximal_count"]))


@pytest.mark.parametrize("edge_density", EDGE_DENSITIES)
def test_figure10b_vary_density(benchmark, edge_density):
    rows = run_once(benchmark, figure10b_rows, edge_densities=(edge_density,),
                    vertex_count=200, gamma=0.9, theta=6)
    attach_rows(benchmark, rows, keys=["edge_density", "algorithm",
                                       "enumeration_seconds", "branches_explored",
                                       "maximal_count"])
    speedup = speedup_over_baseline(rows)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    counts = {row["algorithm"]: row["maximal_count"] for row in rows}
    assert counts["dcfastqc"] == counts["quickplus"]
    assert speedup >= 0.5
    print()
    print(format_table(rows, columns=["edge_density", "algorithm",
                                      "enumeration_seconds", "branches_explored",
                                      "maximal_count"]))
