"""Figure 11: effect of the branching strategy inside DCFastQC.

Compares Hybrid-SE (paper default), Sym-SE and plain SE branching — all with
the same FastQC pruning and the same DC framework — on the Enron and Hyves
analogues while varying gamma and theta.  Reproduced observation: the
pivot-driven branchings (Hybrid-SE / Sym-SE) never explore more branches than
SE, and Hybrid-SE is at least as good as Sym-SE in aggregate.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure11_rows, format_table

from _bench_utils import attach_rows, run_once

CASES = [("enron", "gamma"), ("enron", "theta"), ("hyves", "gamma"), ("hyves", "theta")]


@pytest.mark.parametrize("name, vary", CASES)
def test_figure11_branching(benchmark, name, vary):
    rows = run_once(benchmark, figure11_rows, names=(name,), vary=vary)
    attach_rows(benchmark, rows, keys=["dataset", "branching", "swept_parameter",
                                       "swept_value", "enumeration_seconds",
                                       "branches_explored", "maximal_count"])
    totals = {}
    for row in rows:
        totals.setdefault(row["branching"], 0)
        totals[row["branching"]] += row["branches_explored"]
    benchmark.extra_info["total_branches"] = totals

    # Correctness: every branching strategy finds the same number of MQCs at
    # every swept value.
    by_value = {}
    for row in rows:
        by_value.setdefault(row["swept_value"], set()).add(row["maximal_count"])
    assert all(len(counts) == 1 for counts in by_value.values())

    # Shape: the pivot-driven branchings explore no more branches than SE in
    # aggregate over the sweep.
    assert totals["hybrid"] <= totals["se"]
    assert totals["sym-se"] <= totals["se"]
    print()
    print(format_table(rows, columns=["dataset", "branching", "swept_value",
                                      "enumeration_seconds", "branches_explored"]))
    print(f"total branches: {totals}")
