"""Resilience overhead guard: disarmed fault sites must stay (nearly) free.

The PR-9 fault-tolerance layer threads :func:`repro.resilience.faults.fault_point`
calls through the serving hot paths (spool claim/write, worker task loop,
frame writes, subproblem entry).  With no plan installed the site is one
module-global load plus an ``is None`` test; this suite guards that claim
with absolute per-call ceilings, and records what an *armed but non-matching*
plan costs (a dict miss under the plan lock).

The ceilings are deliberately loose (micro-benchmarks on shared CI runners
jitter hard); they exist to catch a regression that turns the no-op path into
real work — an accidental env read per call, say — not to resolve
nanoseconds.

Run with:  pytest benchmarks/bench_resilience_overhead.py -q --benchmark-disable
"""

from __future__ import annotations

import time

from repro.resilience.faults import fault_point, install_plan, parse_plan

#: Calls per timed repetition — enough that per-call noise averages out.
CALLS = 200_000

#: Best-of repetitions; minima of tight CPU loops are stable.
REPEAT = 7

#: Per-call ceilings (seconds).  A disarmed site is a function call, a global
#: load and an ``is None`` test; 2µs is ~100x its expected cost on any
#: modern core, while an accidental os.environ read would blow through it.
MAX_DISABLED_PER_CALL = 2e-6
MAX_MISS_PER_CALL = 4e-6


def _per_call(site: str) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        for _ in range(CALLS):
            fault_point(site)
        best = min(best, (time.perf_counter() - start) / CALLS)
    return best


def test_disarmed_fault_point_is_near_free(benchmark):
    install_plan(None)
    try:
        per_call = benchmark.pedantic(_per_call, args=("spool.claim",),
                                      rounds=1, iterations=1)
    finally:
        install_plan(None)
    benchmark.extra_info["per_call_ns"] = round(per_call * 1e9, 1)
    print(f"\ndisarmed fault_point: {per_call * 1e9:.1f} ns/call")
    assert per_call < MAX_DISABLED_PER_CALL


def test_armed_plan_miss_stays_cheap(benchmark):
    # A plan armed for a *different* site: the hot path pays one dict miss.
    install_plan(parse_plan("serve.write_frame:drop:times=0"))
    try:
        per_call = benchmark.pedantic(_per_call, args=("spool.claim",),
                                      rounds=1, iterations=1)
    finally:
        install_plan(None)
    benchmark.extra_info["per_call_ns"] = round(per_call * 1e9, 1)
    print(f"\narmed-plan miss fault_point: {per_call * 1e9:.1f} ns/call")
    assert per_call < MAX_MISS_PER_CALL
