"""Ablation 3 ("other experiments"): effect of MAX_ROUND on DCFastQC.

The paper finds MAX_ROUND = 2, 3, 4 perform similarly and better than
MAX_ROUND = 1, and therefore uses 2 by default.  The benchmark sweeps
MAX_ROUND on two dataset analogues and checks that (a) the answer never
changes and (b) extra rounds never increase the number of explored branches.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, max_round_rows

from _bench_utils import attach_rows, run_once

DATASETS = ("enron", "hyves")
ROUNDS = (1, 2, 3, 4)


@pytest.mark.parametrize("name", DATASETS)
def test_max_round(benchmark, name):
    rows = run_once(benchmark, max_round_rows, names=(name,), rounds=ROUNDS)
    attach_rows(benchmark, rows, keys=["dataset", "max_rounds", "enumeration_seconds",
                                       "branches_explored", "maximal_count"])

    # The answer is independent of MAX_ROUND.
    assert len({row["maximal_count"] for row in rows}) == 1

    # More shrinking rounds never increase the branch count.
    branches = {row["max_rounds"]: row["branches_explored"] for row in rows}
    assert branches[4] <= branches[1]
    assert branches[2] <= branches[1]
    print()
    print(format_table(rows, columns=["dataset", "max_rounds", "enumeration_seconds",
                                      "branches_explored", "maximal_count"]))
