"""Section 2.2: the MQCE-S2 post-processing step is cheap.

The paper argues that filtering non-maximal QCs with a set-trie is a small
fraction of the total cost (within 0.1s on most datasets, 16s worst case on
its huge inputs).  The benchmark measures the set-trie filter on the Quick+
candidate sets (the larger of the two algorithms' outputs) and on synthetic
families, and checks the filter stays a small fraction of the enumeration time.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import DEFAULT_FIGURE_DATASETS, get_spec
from repro.experiments import format_table, settrie_filtering_rows
from repro.pipeline.mqce import enumerate_candidate_quasi_cliques
from repro.settrie import SetTrie, filter_non_maximal

from _bench_utils import attach_rows, run_once


def test_settrie_filter_fraction(benchmark):
    """Filtering cost relative to enumeration cost on the default datasets."""
    rows = run_once(benchmark, settrie_filtering_rows, names=DEFAULT_FIGURE_DATASETS)
    attach_rows(benchmark, rows, keys=["dataset", "candidate_count", "maximal_count",
                                       "enumeration_seconds", "filtering_seconds",
                                       "filtering_fraction"])
    for row in rows:
        assert row["filtering_seconds"] <= max(0.5, row["enumeration_seconds"])
    print()
    print(format_table(rows, columns=["dataset", "candidate_count", "maximal_count",
                                      "enumeration_seconds", "filtering_seconds",
                                      "filtering_fraction"]))


@pytest.mark.parametrize("name", ["enron", "ca-grqc"])
def test_settrie_filter_on_quickplus_output(benchmark, name):
    """Filter the (large) Quick+ candidate set of a dataset analogue."""
    spec = get_spec(name)
    graph = spec.build()
    candidates, _ = enumerate_candidate_quasi_cliques(
        graph, spec.default_gamma, spec.default_theta, algorithm="quickplus")

    result = run_once(benchmark, filter_non_maximal, candidates, theta=spec.default_theta)
    benchmark.extra_info["candidates"] = len(candidates)
    benchmark.extra_info["maximal"] = len(result)
    assert len(result) <= len(candidates)
    print(f"\n{name}: {len(candidates)} candidates -> {len(result)} maximal QCs")


def test_settrie_queries_scale(benchmark):
    """GetAllSubsets throughput on a synthetic family of 5000 sets."""
    rng = random.Random(3)
    family = [frozenset(rng.sample(range(200), rng.randint(5, 25))) for _ in range(5000)]
    queries = [frozenset(rng.sample(range(200), 40)) for _ in range(50)]
    trie = SetTrie(family)

    def run():
        return sum(len(trie.get_all_subsets(query)) for query in queries)

    total = run_once(benchmark, run)
    benchmark.extra_info["total_matches"] = total
    assert total >= 0
