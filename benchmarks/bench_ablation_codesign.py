"""Ablation 1 ("other experiments"): pruning / branching co-design.

The paper reports that replacing only the branching of Quick+ with the new
Sym-SE / Hybrid-SE methods performs similarly to Quick+ and significantly worse
than DCFastQC — i.e. the new branching pays off only together with the new
pruning.  This benchmark runs Quick+ with each branching method and DCFastQC on
the same dataset analogues and records the running times and branch counts.
"""

from __future__ import annotations

import pytest

from repro.experiments import codesign_ablation_rows, format_table

from _bench_utils import attach_rows, run_once

DATASETS = ("enron", "ca-grqc")


@pytest.mark.parametrize("name", DATASETS)
def test_codesign_ablation(benchmark, name):
    rows = run_once(benchmark, codesign_ablation_rows, names=(name,))
    attach_rows(benchmark, rows, keys=["dataset", "variant", "enumeration_seconds",
                                       "branches_explored", "candidate_count",
                                       "maximal_count"])
    by_variant = {row["variant"]: row for row in rows}

    # Correctness: every variant agrees on the number of MQCs.
    counts = {row["maximal_count"] for row in rows}
    assert len(counts) == 1

    # Shape: the full co-design (DCFastQC) explores far fewer branches than
    # Quick+ regardless of which branching Quick+ uses (branch counts are
    # deterministic, unlike wall-clock time on these small analogues).
    dcfastqc_branches = by_variant["dcfastqc+hybrid"]["branches_explored"]
    dcfastqc_time = by_variant["dcfastqc+hybrid"]["enumeration_seconds"]
    for variant, row in by_variant.items():
        if variant.startswith("quickplus"):
            assert dcfastqc_branches <= row["branches_explored"], (
                f"co-design did not dominate {variant} on {name} (branches)")
            assert dcfastqc_time <= 2.0 * row["enumeration_seconds"] + 0.05, (
                f"co-design was much slower than {variant} on {name}")
    print()
    print(format_table(rows, columns=["dataset", "variant", "enumeration_seconds",
                                      "branches_explored", "candidate_count"]))
