"""Parallel-tier guard: work-stealing branch mode vs whole-subproblem sharding.

The PR-10 acceptance bar: on a planted-community graph whose single dominant
subproblem holds ~60% of all branches, branch-parallel execution at 4 workers
must beat sharding by >= 2x on the critical path — the largest subproblem's
branch count (which lower-bounds shard wall-clock) over the busiest
branch-parallel worker's branch count.  Branch counts are machine-independent,
so the bar holds on single-core CI hosts where wall-clock parallel speedup is
physically impossible; on hosts with >= 4 cores the wall-clock ratio is
asserted too.  Both modes are parity-checked against the sequential ledger
kernel, and the planner must auto-select branch mode on the skewed row (and
keep shard on the uniform one) from the observed branch histogram.

The measurement lives in ``scripts/bench_trajectory.py`` (the ``parallel``
suite recorded into ``BENCH_core.json``); this file reuses that suite so the
benchmark run and CI smoke assert the exact numbers the trajectory records.
By default the quick 2*10^4-vertex rows run; set ``REPRO_BENCH_FULL=1`` for
the paper-scale 10^5-vertex skewed row the committed ``BENCH_core.json``
records.

Run with:  pytest benchmarks/bench_parallel.py -q --benchmark-disable
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from bench_trajectory import (  # noqa: E402
    PARALLEL_FULL,
    PARALLEL_QUICK,
    run_parallel_suite,
)

#: The ISSUE acceptance bar on the skewed row's critical-path ratio.
MIN_BALANCE_SPEEDUP = 2.0
#: Steal-protocol overhead ceiling on the un-skewed row (wall-clock; only
#: meaningful on hosts that can actually run the workers in parallel).
MAX_UNIFORM_OVERHEAD = 0.10

_cache: dict | None = None


def _suite_record() -> dict:
    """Run the parallel trajectory suite once per pytest session."""
    global _cache
    if _cache is None:
        rows = (PARALLEL_FULL if os.environ.get("REPRO_BENCH_FULL")
                else PARALLEL_QUICK)
        _cache = run_parallel_suite(rows, verbose=False)
    return _cache


def _rows(kind: str):
    record = _suite_record()
    return {name: row for name, row in record["datasets"].items()
            if row["kind"] == kind}


def test_branch_mode_balances_the_dominant_subproblem():
    """Skewed row: busiest worker must carry < half the dominant subtree."""
    for name, row in _rows("skewed").items():
        print(f"\n{name}: largest subproblem {row['largest_subproblem_branches']} "
              f"branches, busiest worker {row['busiest_worker_branches']} -> "
              f"balance {row['balance_speedup']}x ({row['steals']} steals)")
        assert row["speedup"] >= MIN_BALANCE_SPEEDUP, (
            f"{name}: balance speedup {row['speedup']}x below the "
            f"{MIN_BALANCE_SPEEDUP}x acceptance bar")
        assert row["steals"] > 0, f"{name}: branch mode never stole a subtree"


def test_wall_clock_tracks_the_balance_on_multicore_hosts():
    """With >= 4 real cores the balance win must show up on the clock too."""
    for name, row in _rows("skewed").items():
        if row["single_core"]:
            pytest.skip("host cannot run the workers in parallel; the "
                        "machine-independent balance bar already ran")
        assert row["wall_speedup"] >= MIN_BALANCE_SPEEDUP * 0.75, (
            f"{name}: wall speedup {row['wall_speedup']}x lags the "
            f"{row['balance_speedup']}x balance speedup by more than 25%")


def test_steal_overhead_on_uniform_input():
    """Un-skewed row: stealing must not regress the balanced case > 10%."""
    for name, row in _rows("uniform").items():
        if row["single_core"]:
            pytest.skip("wall-clock overhead is dominated by timesharing on "
                        "a single-core host")
        assert row["branch_s"] <= (1.0 + MAX_UNIFORM_OVERHEAD) * row["shard_s"], (
            f"{name}: branch {row['branch_s']}s vs shard {row['shard_s']}s "
            f"exceeds the {MAX_UNIFORM_OVERHEAD:.0%} overhead budget")


def test_answers_match_the_sequential_ledger_kernel():
    """Both modes' candidate sets are identical to the sequential run's."""
    for name, row in _suite_record()["datasets"].items():
        assert row["parity"], f"{name}: parity flag not set"


def test_planner_auto_selects_from_observed_branch_histograms():
    """Skewed -> branch, uniform -> shard (the suite raises otherwise)."""
    for row in _rows("skewed").values():
        assert row["auto_mode"] == "branch"
    for row in _rows("uniform").values():
        assert row["auto_mode"] == "shard"
