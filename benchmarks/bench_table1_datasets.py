"""Table 1: dataset statistics and output counts on every dataset analogue.

Paper columns reproduced per dataset: |V|, |E|, |E|/|V|, d, omega, theta_d,
gamma_d, #{MQC}, #{DCFastQC}, #{Quick+}, |H_min|, |H_max|, |H_avg|.
"""

from __future__ import annotations

import pytest

from repro.datasets import dataset_names
from repro.experiments import format_table, table1_row

from _bench_utils import attach_rows, run_once

#: The largest/densest analogues make Quick+ noticeably slower; they are kept
#: (the paper's point is exactly that) but benchmarked individually.
ALL_DATASETS = dataset_names()


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_table1_row(benchmark, name):
    """One Table 1 row: graph statistics plus DCFastQC / Quick+ output counts."""
    row = run_once(benchmark, table1_row, name, include_quickplus=True)
    attach_rows(benchmark, [row])
    assert row["mqc_count"] >= 1
    assert row["dcfastqc_count"] >= row["mqc_count"]
    assert row["quickplus_count"] >= row["mqc_count"]
    # DCFastQC's maximality necessary-condition filter keeps its candidate set
    # far closer to the true MQC count than Quick+ (the Table 1 observation).
    assert row["dcfastqc_count"] <= row["quickplus_count"]
    print()
    print(format_table([row], columns=[
        "dataset", "vertices", "edges", "edge_density", "max_degree", "degeneracy",
        "gamma_default", "theta_default", "mqc_count", "dcfastqc_count",
        "quickplus_count", "min_size", "max_size", "avg_size"]))
