"""Kernel benchmark: incremental degree-ledger kernel vs mask-based reference.

The PR-4 enumeration core replaces per-branch popcount rescans with
incremental :class:`repro.core.kernel.BranchState` ledgers and remaps every
divide-and-conquer subproblem to a compact dense index space.  This benchmark
measures cold DCFastQC enumeration (no result cache, no prepared-graph reuse)
under both kernels on registry dataset analogues at branch-heavy parameter
points, checks output parity, and asserts the kernelized path is at least
``REQUIRED_SPEEDUP`` x faster on at least ``REQUIRED_DATASETS`` datasets.

``REPRO_BENCH_QUICK=1`` (CI smoke mode) keeps the rows with the largest
speedup margins so the assertion stays meaningful on noisy runners.  The
same suite is what ``scripts/bench_trajectory.py`` records into
``BENCH_core.json``.

Run with:  pytest benchmarks/bench_kernel.py --benchmark-only
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.dcfastqc import DCFastQC
from repro.datasets import load_dataset

from _bench_utils import attach_rows, run_once

#: (row id, dataset, gamma, theta) — branch-heavy points (hundreds to
#: thousands of branches) where enumeration dominates preprocessing.
FULL_CASES = (
    ("ca-grqc", "ca-grqc", 0.9, 5),
    ("enron", "enron", 0.85, 6),
    ("pokec", "pokec", 0.9, 6),
    ("uk2002", "uk2002", 0.9, 7),
    ("uk2002-heavy", "uk2002", 0.85, 8),
)
QUICK_CASES = (
    ("enron", "enron", 0.85, 6),
    ("pokec", "pokec", 0.9, 6),
    ("uk2002", "uk2002", 0.9, 7),
)
CASES = QUICK_CASES if os.environ.get("REPRO_BENCH_QUICK") else FULL_CASES

#: The asserted floor: kernelized cold enumeration must beat the reference
#: implementation by at least this factor on at least this many datasets.
REQUIRED_SPEEDUP = 3.0
REQUIRED_DATASETS = 2

#: Measurements are cached so the summary assertion reuses the per-case rows.
_ROWS: dict[str, dict] = {}


def _measure(case_id: str) -> dict:
    if case_id in _ROWS:
        return _ROWS[case_id]
    _, dataset, gamma, theta = next(c for c in CASES if c[0] == case_id)
    graph = load_dataset(dataset)
    timings = {}
    outputs = {}
    stats = {}
    for kernel in ("ledger", "reference"):
        best = None
        for _ in range(2):  # best-of-2: first round warms the tau/threshold caches
            algo = DCFastQC(graph, gamma, theta, kernel=kernel)
            start = time.perf_counter()
            results = algo.enumerate()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
            outputs[kernel] = results
            stats[kernel] = algo.statistics
        timings[kernel] = best
    assert outputs["ledger"] == outputs["reference"], \
        f"{case_id}: kernel and reference outputs diverged"
    assert (stats["ledger"].branches_explored
            == stats["reference"].branches_explored), \
        f"{case_id}: kernel and reference explored different branch trees"
    row = {
        "case": case_id,
        "dataset": dataset,
        "gamma": gamma,
        "theta": theta,
        "branches": stats["ledger"].branches_explored,
        "ledger_ms": round(timings["ledger"] * 1000, 3),
        "reference_ms": round(timings["reference"] * 1000, 3),
        "speedup": (round(timings["reference"] / timings["ledger"], 2)
                    if timings["ledger"] else float("inf")),
        "ledger_moves": stats["ledger"].ledger_moves,
    }
    _ROWS[case_id] = row
    return row


@pytest.mark.parametrize("case_id", [case[0] for case in CASES])
def test_kernel_vs_reference(benchmark, case_id):
    """Per-dataset row: cold enumeration latency under both kernels, with parity."""
    row = run_once(benchmark, _measure, case_id)
    attach_rows(benchmark, [row])
    print()
    print(f"{case_id}: ledger {row['ledger_ms']} ms vs reference "
          f"{row['reference_ms']} ms -> {row['speedup']}x "
          f"({row['branches']} branches)")


def test_kernel_speedup_meets_target(benchmark):
    """The ledger kernel must be >= 3x on at least two registry datasets."""
    rows = run_once(benchmark, lambda: [_measure(case[0]) for case in CASES])
    attach_rows(benchmark, rows)
    passing = [row for row in rows if row["speedup"] >= REQUIRED_SPEEDUP]
    assert len(passing) >= min(REQUIRED_DATASETS, len(rows)), rows


# ----------------------------------------------------------------------
# Quick+ kernel rows: the same ledger-vs-reference comparison for the
# paper's co-design ablation baseline (all three algorithms share one
# branch-state kernel since PR 5).
# ----------------------------------------------------------------------
QUICKPLUS_FULL_CASES = (
    ("qp-trec", "trec", 0.96, 10),
    ("qp-kmer", "kmer", 0.51, 6),
    ("qp-enron", "enron", 0.9, 9),
    ("qp-flixster", "flixster", 0.96, 10),
)
QUICKPLUS_QUICK_CASES = (
    ("qp-trec", "trec", 0.96, 10),
    ("qp-kmer", "kmer", 0.51, 6),
)
QUICKPLUS_CASES = (QUICKPLUS_QUICK_CASES if os.environ.get("REPRO_BENCH_QUICK")
                   else QUICKPLUS_FULL_CASES)

#: Quick+ floor: the shared ledger kernel must halve the baseline's cold
#: latency on at least this many datasets.
QUICKPLUS_REQUIRED_SPEEDUP = 1.5
QUICKPLUS_REQUIRED_DATASETS = 2

_QP_ROWS: dict[str, dict] = {}


def _measure_quickplus(case_id: str) -> dict:
    if case_id in _QP_ROWS:
        return _QP_ROWS[case_id]
    from repro.baselines.quickplus import QuickPlus

    _, dataset, gamma, theta = next(c for c in QUICKPLUS_CASES if c[0] == case_id)
    graph = load_dataset(dataset)
    timings = {}
    outputs = {}
    branches = {}
    for kernel in ("ledger", "reference"):
        best = None
        for _ in range(2):
            algo = QuickPlus(graph, gamma, theta, kernel=kernel)
            start = time.perf_counter()
            results = algo.enumerate()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
            outputs[kernel] = results
            branches[kernel] = algo.statistics.branches_explored
        timings[kernel] = best
    assert outputs["ledger"] == outputs["reference"], \
        f"{case_id}: Quick+ kernel and reference outputs diverged"
    assert branches["ledger"] == branches["reference"], \
        f"{case_id}: Quick+ kernels explored different branch trees"
    row = {
        "case": case_id,
        "dataset": dataset,
        "gamma": gamma,
        "theta": theta,
        "branches": branches["ledger"],
        "ledger_ms": round(timings["ledger"] * 1000, 3),
        "reference_ms": round(timings["reference"] * 1000, 3),
        "speedup": (round(timings["reference"] / timings["ledger"], 2)
                    if timings["ledger"] else float("inf")),
    }
    _QP_ROWS[case_id] = row
    return row


@pytest.mark.parametrize("case_id", [case[0] for case in QUICKPLUS_CASES])
def test_quickplus_kernel_vs_reference(benchmark, case_id):
    """Per-dataset row: Quick+ cold latency under both kernels, with parity."""
    row = run_once(benchmark, _measure_quickplus, case_id)
    attach_rows(benchmark, [row])
    print()
    print(f"{case_id}: ledger {row['ledger_ms']} ms vs reference "
          f"{row['reference_ms']} ms -> {row['speedup']}x")


def test_quickplus_kernel_speedup_meets_target(benchmark):
    """Quick+'s ledger kernel must be >= 1.5x on at least two datasets."""
    rows = run_once(benchmark, lambda: [_measure_quickplus(case[0])
                                        for case in QUICKPLUS_CASES])
    attach_rows(benchmark, rows)
    passing = [row for row in rows
               if row["speedup"] >= QUICKPLUS_REQUIRED_SPEEDUP]
    assert len(passing) >= min(QUICKPLUS_REQUIRED_DATASETS, len(rows)), rows
