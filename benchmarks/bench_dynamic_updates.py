"""Dynamic-engine benchmark: incremental update + requery vs full rebuild.

A serving system absorbing graph updates has two options after each mutation:
throw the prepared artifacts and result cache away and rebuild (the static
engine's behaviour), or patch the artifacts and invalidate selectively
(:class:`repro.dynamic.DynamicEngine`).  This benchmark measures both on the
registry dataset analogues for the canonical serving step — one edge update
followed by a repeat of the standing query:

* **incremental** — ``DynamicEngine``: patch artifacts, selectively invalidate
  (the touched edge is chosen outside every cached result region, the common
  case in a sparse graph), requery warm;
* **rebuild** — a fresh engine + fresh ``PreparedGraph`` over the mutated
  graph: full preprocessing + full enumeration.

The suite asserts the incremental path is at least ``REQUIRED_SPEEDUP`` x
faster on the largest active dataset.  ``REPRO_BENCH_QUICK=1`` (CI smoke mode)
shrinks the dataset spread to the fastest analogue while keeping the
assertion.

Run with:  pytest benchmarks/bench_dynamic_updates.py --benchmark-only
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import get_spec, load_dynamic
from repro.engine import MQCEEngine, PreparedGraph

from _bench_utils import attach_rows, run_once

#: Dataset spread; quick mode keeps only the fastest analogue.  The last name
#: is the largest registry dataset of the active set — uk2002, the biggest
#: graph in the paper's Table 1 by edge count (261.8M edges; its analogue also
#: has the largest edge count) — and carries the speedup assertion.
DATASETS = (("ca-grqc",) if os.environ.get("REPRO_BENCH_QUICK")
            else ("ca-grqc", "enron", "fullusa", "kmer", "uk2002"))

#: Minimum speedup of incremental-update+requery over a cold rebuild.  The
#: PR-4 ledger kernel cut cold enumeration itself by ~6x (see BENCH_core.json),
#: which shrank this ratio's denominator from ~50 ms to ~8 ms on uk2002 — the
#: warm path now competes against fixed per-query overheads, not enumeration
#: cost — so the floor moved from 10x (measured 58x pre-kernel) to 4x
#: (measured 6.5-10x post-kernel).  The functional canaries (selective
#: invalidation, cache retention, warm hit) are asserted exactly either way.
REQUIRED_SPEEDUP = 4.0


def _pick_survivable_edge(graph, result):
    """An edge whose removal provably leaves the cached entry valid.

    Removing an edge can only change the answer where a result set contains
    both endpoints, so any edge outside every maximal/candidate set keeps the
    entry warm — the overwhelmingly common case for background edges.
    """
    result_sets = (list(result.maximal_quasi_cliques)
                   + list(result.candidate_quasi_cliques))
    for u, v in graph.edges():
        if not any(u in s and v in s for s in result_sets):
            return u, v
    return None


def _incremental_vs_rebuild(name: str):
    """Time one update+requery through both strategies; returns a result row."""
    spec = get_spec(name)
    gamma, theta = spec.default_gamma, spec.default_theta
    dynamic = load_dynamic(name)
    cold_start = time.perf_counter()
    baseline = dynamic.query(gamma, theta)
    cold_seconds = time.perf_counter() - cold_start
    edge = _pick_survivable_edge(dynamic.graph, baseline)
    assert edge is not None, f"{name}: no background edge outside the result regions"
    hits_before = dynamic.engine.cache.stats.hits

    start = time.perf_counter()
    report = dynamic.remove_edge(*edge)
    incremental_result = dynamic.query(gamma, theta)
    incremental_seconds = time.perf_counter() - start
    assert report.invalidated == 0 and report.retained >= 1, report
    assert dynamic.engine.cache.stats.hits == hits_before + 1, \
        "the retained entry must serve the requery warm"

    start = time.perf_counter()
    rebuilt = MQCEEngine().query(PreparedGraph(dynamic.graph), gamma, theta)
    rebuild_seconds = time.perf_counter() - start
    assert rebuilt.maximal_quasi_cliques == incremental_result.maximal_quasi_cliques, \
        "incremental and rebuilt answers diverged"

    return {
        "dataset": name,
        "cold_ms": round(cold_seconds * 1000, 3),
        "incremental_ms": round(incremental_seconds * 1000, 3),
        "rebuild_ms": round(rebuild_seconds * 1000, 3),
        "speedup": (round(rebuild_seconds / incremental_seconds, 1)
                    if incremental_seconds else float("inf")),
        "retained_entries": report.retained,
    }


@pytest.mark.parametrize("name", DATASETS)
def test_incremental_update_vs_rebuild(benchmark, name):
    """Per-dataset row: update+requery latency for both strategies."""
    row = run_once(benchmark, _incremental_vs_rebuild, name)
    attach_rows(benchmark, [row])
    print()
    print(f"{name}: incremental {row['incremental_ms']} ms vs rebuild "
          f"{row['rebuild_ms']} ms -> {row['speedup']}x "
          f"({row['retained_entries']} cache entries survived)")


def test_incremental_speedup_meets_target(benchmark):
    """Single-edge update + requery must beat a cold rebuild by >= 10x on the
    largest active registry dataset."""
    largest = DATASETS[-1]
    row = run_once(benchmark, _incremental_vs_rebuild, largest)
    attach_rows(benchmark, [row])
    assert row["speedup"] >= REQUIRED_SPEEDUP, row


def test_update_stream_throughput(benchmark):
    """A short update stream with a standing query: mostly-warm serving."""
    name = DATASETS[0]
    spec = get_spec(name)
    gamma, theta = spec.default_gamma, spec.default_theta
    dynamic = load_dynamic(name)
    baseline = dynamic.query(gamma, theta)
    edges = []
    result_sets = (list(baseline.maximal_quasi_cliques)
                   + list(baseline.candidate_quasi_cliques))
    for u, v in dynamic.graph.edges():
        if len(edges) >= 10:
            break
        if not any(u in s and v in s for s in result_sets):
            edges.append((u, v))

    def run_stream():
        start = time.perf_counter()
        for u, v in edges:
            dynamic.remove_edge(u, v)
            dynamic.query(gamma, theta)
        return time.perf_counter() - start

    elapsed = run_once(benchmark, run_stream)
    stats = dynamic.stats()
    row = {
        "dataset": name,
        "updates": len(edges),
        "wall_seconds": round(elapsed, 4),
        "updates_per_second": round(len(edges) / elapsed, 1) if elapsed else float("inf"),
        "cache_hits": stats["cache"]["hits"],
        "entries_retained": stats["dynamic"]["updates"]["entries_retained"],
    }
    attach_rows(benchmark, [row])
    print()
    print(f"{name}: {row['updates_per_second']} update+requery/s "
          f"({row['cache_hits']} warm hits over {row['updates']} updates)")
