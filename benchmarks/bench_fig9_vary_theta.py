"""Figure 9: running time of DCFastQC vs Quick+ while varying theta.

Reproduced observations: DCFastQC wins at every theta, and the work (explored
branches / running time) shrinks as theta grows because the size-based pruning
and the divide-and-conquer reduction become more effective.
"""

from __future__ import annotations

import pytest

from repro.datasets import DEFAULT_FIGURE_DATASETS, get_spec
from repro.experiments import format_table, speedup_over_baseline, sweep_parameter

from _bench_utils import attach_rows, run_once


def theta_values(name: str) -> list[int]:
    theta = get_spec(name).default_theta
    return [max(2, theta - 2), theta, theta + 2]


@pytest.mark.parametrize("name", DEFAULT_FIGURE_DATASETS)
def test_figure9_vary_theta(benchmark, name):
    spec = get_spec(name)
    graph = spec.build()
    values = theta_values(name)

    def run():
        return sweep_parameter(graph, "theta", values, spec.default_gamma,
                               spec.default_theta, algorithms=("dcfastqc", "quickplus"))

    rows = run_once(benchmark, run)
    for row in rows:
        row["dataset"] = name
    attach_rows(benchmark, rows, keys=["dataset", "algorithm", "swept_value",
                                       "enumeration_seconds", "branches_explored",
                                       "maximal_count"])
    speedup = speedup_over_baseline(rows)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # Correctness: both algorithms agree on the MQC count at every theta.
    for value in values:
        counts = {row["algorithm"]: row["maximal_count"]
                  for row in rows if row["swept_value"] == value}
        assert counts["dcfastqc"] == counts["quickplus"]
    # Shape: DCFastQC at least matches Quick+ overall.
    assert speedup >= 0.5
    # Shape: the DCFastQC branch count shrinks from the smallest to the
    # largest theta (pruning and DC reduction get stronger with theta).
    dcfastqc_branches = {row["swept_value"]: row["branches_explored"]
                         for row in rows if row["algorithm"] == "dcfastqc"}
    assert dcfastqc_branches[values[-1]] <= dcfastqc_branches[values[0]]
    print()
    print(format_table(rows, columns=["dataset", "algorithm", "swept_value",
                                      "enumeration_seconds", "branches_explored",
                                      "maximal_count"]))
