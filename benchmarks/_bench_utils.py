"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
scaled-down dataset analogues.  The wall-clock numbers are collected by
pytest-benchmark; the paper-style rows (who wins, by how much, how the trend
moves with the swept parameter) are attached as ``extra_info`` and printed so
they can be copied into EXPERIMENTS.md.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The enumeration runs take between 0.05s and a few seconds; a single round
    keeps the whole suite fast while still recording comparable timings.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_rows(benchmark, rows, keys=None):
    """Attach harness rows to the benchmark record and return them."""
    compact = []
    for row in rows:
        if keys is None:
            compact.append(dict(row))
        else:
            compact.append({key: row.get(key) for key in keys})
    benchmark.extra_info["rows"] = compact
    return rows


@pytest.fixture(scope="session")
def speedup_table():
    """Collect per-benchmark speedups so the terminal summary can show them."""
    return {}
