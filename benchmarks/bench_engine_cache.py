"""Engine benchmark: cold vs warm query latency and batch throughput.

The query engine's value proposition is that repeated traffic over the same
graph should not pay for preprocessing or enumeration twice.  This benchmark
measures, on registry dataset analogues:

* **cold** — first `MQCEEngine.query()` on a fresh engine (prepare + plan +
  enumerate + filter + cache insert),
* **warm** — the identical query again (plan + cache hit + defensive copy),
  which must be at least an order of magnitude faster, and
* **batch throughput** — a gamma x theta grid repeated through one engine,
  reported as queries per second with the cache hit rate attached.

Run with:  pytest benchmarks/bench_engine_cache.py --benchmark-only

Setting ``REPRO_BENCH_QUICK=1`` shrinks the dataset spread to one small
analogue — the CI smoke-benchmark mode, which keeps the cold/warm speedup
assertion (so cache/planner regressions still fail the job) while staying
inside a pull-request time budget.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import get_spec, load_prepared
from repro.engine import MQCEEngine, QueryRequest

from _bench_utils import attach_rows, run_once

#: A spread of registry analogues: sparse/social/road-like backgrounds.
#: REPRO_BENCH_QUICK=1 (CI smoke mode) keeps only the fastest one.
DATASETS = (("ca-grqc",) if os.environ.get("REPRO_BENCH_QUICK")
            else ("ca-grqc", "enron", "douban", "kmer"))

#: The warm/cold ratio the engine must beat on at least one dataset
#: (in practice every dataset clears it by 1-2 orders of magnitude).
REQUIRED_SPEEDUP = 10.0


def _cold_and_warm_seconds(name: str) -> tuple[float, float]:
    """Time one cold query and one identical warm query on a fresh engine."""
    spec = get_spec(name)
    prepared = load_prepared(name)
    engine = MQCEEngine()
    start = time.perf_counter()
    cold_result = engine.query(prepared, spec.default_gamma, spec.default_theta)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    warm_result = engine.query(prepared, spec.default_gamma, spec.default_theta)
    warm = time.perf_counter() - start
    assert warm_result.maximal_quasi_cliques == cold_result.maximal_quasi_cliques
    assert engine.cache.stats.hits == 1
    return cold, warm


@pytest.mark.parametrize("name", DATASETS)
def test_cold_vs_warm_latency(benchmark, name):
    """One cold + one warm query; the row records the per-dataset speedup."""
    cold, warm = run_once(benchmark, _cold_and_warm_seconds, name)
    row = {
        "dataset": name,
        "cold_ms": round(cold * 1000, 3),
        "warm_ms": round(warm * 1000, 3),
        "speedup": round(cold / warm, 1) if warm else float("inf"),
    }
    attach_rows(benchmark, [row])
    print()
    print(f"{name}: cold {row['cold_ms']} ms, warm {row['warm_ms']} ms "
          f"-> {row['speedup']}x")


def test_warm_speedup_meets_target(benchmark):
    """At least one registry dataset must serve warm queries >= 10x faster."""

    def sweep():
        return {name: _cold_and_warm_seconds(name) for name in DATASETS}

    timings = run_once(benchmark, sweep)
    speedups = {name: (cold / warm if warm else float("inf"))
                for name, (cold, warm) in timings.items()}
    attach_rows(benchmark, [{"dataset": name, "speedup": round(value, 1)}
                            for name, value in speedups.items()])
    assert max(speedups.values()) >= REQUIRED_SPEEDUP, speedups


@pytest.mark.parametrize("name", ("ca-grqc", "douban"))
def test_batch_throughput(benchmark, name):
    """A gamma x theta grid, repeated: throughput with and without cache help."""
    spec = get_spec(name)
    prepared = load_prepared(name)
    gammas = (spec.default_gamma, min(1.0, round(spec.default_gamma + 0.02, 3)))
    thetas = (spec.default_theta, max(1, spec.default_theta - 1))
    grid = [QueryRequest(gamma, theta) for gamma in gammas for theta in thetas]
    engine = MQCEEngine()

    def run_batch():
        start = time.perf_counter()
        results = engine.query_batch(prepared, grid * 5)
        elapsed = time.perf_counter() - start
        return len(results), elapsed

    count, elapsed = run_once(benchmark, run_batch)
    stats = engine.stats()
    row = {
        "dataset": name,
        "queries": count,
        "wall_seconds": round(elapsed, 4),
        "queries_per_second": round(count / elapsed, 1) if elapsed else float("inf"),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 3),
    }
    attach_rows(benchmark, [row])
    # 4 distinct configurations, repeated 5x: everything after round one hits.
    assert stats["cache"]["hits"] == count - len(grid)
    print()
    print(f"{name}: {row['queries_per_second']} q/s over {count} queries "
          f"(hit rate {row['cache_hit_rate']:.0%})")
