"""Observability overhead guard: the disabled path must stay (nearly) free.

The PR-6 observability layer threads two hooks through the enumeration hot
path: a per-branch ``ticker`` conditional in
:func:`repro.core.kernel.depth_first_enumerate` and no-op
:data:`~repro.obs.trace.NULL_TRACER` spans at phase/subproblem granularity.
Both default to off; this suite guards that "off" costs what it claims:

* ``test_driver_ticker_overhead`` — the instrumented work-stack driver with
  ``ticker=None`` vs a pristine pre-observability copy of the same loop, on a
  synthetic tree large enough (~200k branches) that one extra conditional per
  branch would show.  Floor: < 2% (the ISSUE acceptance bar).
* ``test_trajectory_row_overhead`` — a quick ``bench_trajectory.py`` core row
  (cold DCFastQC on the enron analogue) with obs disabled vs fully enabled
  (active tracer + per-10-branch ticker), recording how much *enabled*
  observability costs.  Sanity ceiling only; tracing is opt-in.

Run with:  pytest benchmarks/bench_obs_overhead.py -q --benchmark-disable
"""

from __future__ import annotations

import time

from repro.core.dcfastqc import DCFastQC
from repro.core.kernel import depth_first_enumerate
from repro.datasets import load_dataset
from repro.obs import ProgressTicker, Tracer

#: Synthetic tree shape: a complete tree with this fan-out and depth
#: (branches = fanout^0 + ... + fanout^depth ≈ 200k).
FANOUT = 6
DEPTH = 7

#: Best-of repetitions.  Minima of CPU-bound loops are stable enough to
#: resolve a sub-2% difference on CI runners.
REPEAT = 9

#: The ISSUE acceptance bar for the disabled path.
MAX_DISABLED_OVERHEAD = 0.02


def _pristine_depth_first(root, expand, close, should_stop=None) -> bool:
    """The pre-observability driver loop, byte-for-byte minus the ticker."""
    stack = [(False, root)]
    found = [False]
    while stack:
        closing, payload = stack.pop()
        if closing:
            sub_found = found.pop()
            if close(payload, sub_found):
                sub_found = True
            if sub_found:
                found[-1] = True
            continue
        if should_stop is not None and should_stop():
            return True
        outcome = expand(payload)
        if isinstance(outcome, bool):
            if outcome:
                found[-1] = True
            continue
        children, close_payload = outcome
        stack.append((True, close_payload))
        found.append(False)
        for child in reversed(children):
            stack.append((False, child))
    return found[0]


def _synthetic_tree_walk(driver, **kwargs) -> int:
    """Walk a complete (FANOUT, DEPTH) tree; returns branches visited."""
    visited = 0

    def expand(node):
        nonlocal visited
        visited += 1
        depth = node
        if depth >= DEPTH:
            return False
        return [depth + 1] * FANOUT, depth

    def close(payload, found_in_subtree):
        return False

    driver(0, expand, close, **kwargs)
    return visited


def _best_of(repeat, run):
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _best_of_interleaved(repeat, run_a, run_b):
    """Best-of minima with A/B rounds interleaved.

    Timing all of A then all of B lets CPU frequency / load drift between the
    blocks masquerade as a difference; alternating rounds makes both sides
    sample the same machine conditions.
    """
    best_a = best_b = None
    for _ in range(repeat):
        start = time.perf_counter()
        run_a()
        elapsed = time.perf_counter() - start
        if best_a is None or elapsed < best_a:
            best_a = elapsed
        start = time.perf_counter()
        run_b()
        elapsed = time.perf_counter() - start
        if best_b is None or elapsed < best_b:
            best_b = elapsed
    return best_a, best_b


def test_driver_ticker_overhead():
    """ticker=None in the hot driver loop must cost < 2% vs the pristine loop."""
    # Same branch count both ways (sanity for the comparison).
    branches = _synthetic_tree_walk(_pristine_depth_first)
    assert _synthetic_tree_walk(depth_first_enumerate, ticker=None) == branches
    assert branches > 100_000

    # A warmup round, then interleaved best-of timing of both drivers.
    _synthetic_tree_walk(depth_first_enumerate, ticker=None)
    pristine, instrumented = _best_of_interleaved(
        REPEAT,
        lambda: _synthetic_tree_walk(_pristine_depth_first),
        lambda: _synthetic_tree_walk(depth_first_enumerate, ticker=None))
    overhead = instrumented / pristine - 1.0
    print(f"\ndriver: pristine {pristine * 1000:.1f} ms vs instrumented "
          f"{instrumented * 1000:.1f} ms over {branches} branches "
          f"({overhead:+.2%} overhead, floor {MAX_DISABLED_OVERHEAD:.0%})")
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-observability driver overhead {overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} ({pristine * 1000:.2f} ms -> "
        f"{instrumented * 1000:.2f} ms over {branches} branches)")


def test_trajectory_row_overhead():
    """Cold DCFastQC (a quick trajectory row) with obs fully on vs off."""
    graph = load_dataset("enron")
    gamma, theta = 0.85, 6

    def run_disabled():
        return DCFastQC(graph, gamma, theta).enumerate()

    def run_enabled():
        tracer = Tracer()
        ticker = ProgressTicker(lambda event: None, every=10)
        return DCFastQC(graph, gamma, theta, tracer=tracer,
                        progress=ticker).enumerate()

    baseline = run_disabled()
    assert run_enabled() == baseline  # observability must not change answers

    disabled = _best_of(3, run_disabled)
    enabled = _best_of(3, run_enabled)
    overhead = enabled / disabled - 1.0
    print(f"\ntrajectory row (enron gamma={gamma} theta={theta}): "
          f"disabled {disabled * 1000:.1f} ms vs enabled {enabled * 1000:.1f} ms "
          f"({overhead:+.2%} with tracing + per-10-branch ticker)")
    # Enabled tracing is opt-in; this is a sanity ceiling, not a perf floor.
    assert overhead < 0.50, (
        f"enabled observability costs {overhead:.2%} on a quick trajectory "
        "row — span/ticker machinery has regressed badly")
