"""Serve-layer benchmark: closed-loop throughput and stampede coalescing.

Boots a real :class:`repro.serve.ReproService` (asyncio server, wire
protocol, admission control) in a background thread and drives it with
blocking :class:`repro.serve.ServeClient` connections from worker threads —
the same path a deployment takes, socket framing included.  Two scenarios:

* **closed-loop hot/cold mix** — N clients each run one cold query then a
  train of identical hot (cache-served) queries against registry dataset
  analogues; reports queries/second and client-observed time-to-first-batch
  for both temperatures.
* **stampede A/B** — K clients fire the *same* cold query simultaneously at
  (a) a coalescing server (single-flight: one enumeration for the whole
  stampede) and (b) a server with coalescing disabled (every client
  enumerates under the same admission limits).  The coalesced wall-clock
  must beat the uncoalesced stampede by ``STAMPEDE_SPEEDUP_FLOOR`` — the
  guarantee that single-flight actually collapses redundant work, not just
  deduplicates bookkeeping.

Run with:  pytest benchmarks/bench_serve_throughput.py --benchmark-only

Setting ``REPRO_BENCH_QUICK=1`` (the CI smoke mode) shrinks the spread to
one dataset and fewer clients while keeping the speedup assertion.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.datasets import get_spec, load_dataset
from repro.serve import ReproService, ServeClient, start_in_thread

from _bench_utils import attach_rows, run_once

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: (dataset, gamma, theta) rows for the hot/cold mix: registry defaults.
MIX_DATASETS = (("ca-grqc",) if QUICK else ("ca-grqc", "enron", "condmat"))

#: Clients and hot queries per client in the closed loop.
MIX_CLIENTS = 4 if QUICK else 8
MIX_HOT_QUERIES = 5 if QUICK else 10

#: The stampede: K identical cold queries at once.  The parameters are
#: deliberately harder than the registry defaults so one enumeration takes
#: ~50-200ms and dominates per-request protocol overhead.
STAMPEDE_DATASET, STAMPEDE_GAMMA, STAMPEDE_THETA = (
    ("ca-grqc", 0.7, 5) if QUICK else ("enron", 0.75, 6))
STAMPEDE_CLIENTS = 6 if QUICK else 8
STAMPEDE_CONCURRENCY = 2

#: Coalesced stampede wall-clock must beat uncoalesced by at least this.
#: Theoretical gain is STAMPEDE_CLIENTS / STAMPEDE_CONCURRENCY (4x full, 3x
#: quick); the floor leaves headroom for scheduling noise.
STAMPEDE_SPEEDUP_FLOOR = 1.5 if QUICK else 2.0


def _boot(name: str, *, single_flight: bool = True,
          max_concurrent: int = 4, max_queue: int = 64):
    service = ReproService(max_concurrent=max_concurrent, max_queue=max_queue,
                           single_flight=single_flight)
    service.add_graph(name, load_dataset(name))
    return service, start_in_thread(service)


def _timed_query(port: int, fields: dict) -> tuple[float, float, bool]:
    """One query over a fresh connection: (total s, first-batch s, from_cache)."""
    start = time.perf_counter()
    first_batch = None
    done: dict = {}
    with ServeClient(port=port) as client:
        for frame in client.query_stream(fields):
            if frame["type"] == "batch" and first_batch is None:
                first_batch = time.perf_counter() - start
            if frame["type"] == "done":
                done = frame
    total = time.perf_counter() - start
    return total, (first_batch if first_batch is not None else total), bool(
        done.get("from_cache"))


# ----------------------------------------------------------------------
# Closed-loop hot/cold mix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MIX_DATASETS)
def test_serve_closed_loop_throughput(benchmark, name):
    spec = get_spec(name)
    fields = {"gamma": spec.default_gamma, "theta": spec.default_theta}
    service, handle = _boot(name)
    samples: list[tuple[float, float, bool]] = []
    lock = threading.Lock()

    def client_loop() -> None:
        for _ in range(1 + MIX_HOT_QUERIES):
            sample = _timed_query(handle.port, fields)
            with lock:
                samples.append(sample)

    def closed_loop() -> float:
        threads = [threading.Thread(target=client_loop)
                   for _ in range(MIX_CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    try:
        wall = run_once(benchmark, closed_loop)
    finally:
        handle.stop()

    total = MIX_CLIENTS * (1 + MIX_HOT_QUERIES)
    assert len(samples) == total
    hot = [s for s in samples if s[2]]
    cold = [s for s in samples if not s[2]]
    # The very first arrival executes; post-cache traffic reports hot.
    assert hot, "no cache-served queries in a closed hot/cold loop"
    qps = total / wall
    rows = [{
        "dataset": name, "clients": MIX_CLIENTS, "queries": total,
        "wall_seconds": round(wall, 4), "queries_per_second": round(qps, 1),
        "cold_queries": len(cold),
        "cold_ttfb_ms": round(1000 * min(s[1] for s in cold), 2) if cold else None,
        "hot_ttfb_ms": round(1000 * min(s[1] for s in hot), 2),
        "hot_mean_ms": round(1000 * sum(s[0] for s in hot) / len(hot), 2),
    }]
    attach_rows(benchmark, rows)
    print()
    for row in rows:
        print(f"# serve {name}: {row['queries_per_second']} q/s over "
              f"{MIX_CLIENTS} clients ({row['cold_queries']} cold, "
              f"hot TTFB {row['hot_ttfb_ms']}ms)")
    assert qps > 1.0  # sanity floor: the service must actually stream


# ----------------------------------------------------------------------
# Stampede A/B: coalesced vs uncoalesced
# ----------------------------------------------------------------------
def _stampede_wall(port: int, service: ReproService, fields: dict) -> float:
    """Fire STAMPEDE_CLIENTS identical cold queries; wall-clock to drain all."""
    with ServeClient(port=port) as control:
        control.flush()  # cold again: drop the server-side result cache
    barrier = threading.Barrier(STAMPEDE_CLIENTS)
    failures: list[BaseException] = []

    def one_client() -> None:
        try:
            with ServeClient(port=port) as client:
                barrier.wait(timeout=30)
                cliques, done = client.query(fields)
                assert done["finished"] and cliques
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=one_client)
               for _ in range(STAMPEDE_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    wall = time.perf_counter() - start
    assert not failures, failures
    return wall


def test_stampede_coalescing_speedup(benchmark):
    # The generous time_limit never triggers, but it makes the spec
    # uncacheable by design — so in the uncoalesced server every client
    # genuinely enumerates instead of replaying the first leader's cached
    # result, which is exactly the redundant work single-flight collapses.
    fields = {"gamma": STAMPEDE_GAMMA, "theta": STAMPEDE_THETA,
              "time_limit": 300}

    def run_ab() -> tuple[float, float]:
        service, handle = _boot(STAMPEDE_DATASET, single_flight=True,
                                max_concurrent=STAMPEDE_CONCURRENCY)
        try:
            coalesced = _stampede_wall(handle.port, service, fields)
        finally:
            handle.stop()
        service, handle = _boot(STAMPEDE_DATASET, single_flight=False,
                                max_concurrent=STAMPEDE_CONCURRENCY)
        try:
            uncoalesced = _stampede_wall(handle.port, service, fields)
        finally:
            handle.stop()
        return coalesced, uncoalesced

    coalesced, uncoalesced = run_once(benchmark, run_ab)
    speedup = uncoalesced / coalesced if coalesced else float("inf")
    rows = [{
        "dataset": STAMPEDE_DATASET, "gamma": STAMPEDE_GAMMA,
        "theta": STAMPEDE_THETA, "clients": STAMPEDE_CLIENTS,
        "max_concurrent": STAMPEDE_CONCURRENCY,
        "coalesced_seconds": round(coalesced, 4),
        "uncoalesced_seconds": round(uncoalesced, 4),
        "speedup": round(speedup, 2),
        "floor": STAMPEDE_SPEEDUP_FLOOR,
    }]
    attach_rows(benchmark, rows)
    print()
    print(f"# stampede x{STAMPEDE_CLIENTS} on {STAMPEDE_DATASET}: "
          f"coalesced {coalesced:.3f}s vs uncoalesced {uncoalesced:.3f}s "
          f"-> {speedup:.1f}x (floor {STAMPEDE_SPEEDUP_FLOOR}x)")
    assert speedup >= STAMPEDE_SPEEDUP_FLOOR, (
        f"single-flight stampede speedup {speedup:.2f}x fell below the "
        f"{STAMPEDE_SPEEDUP_FLOOR}x floor")
