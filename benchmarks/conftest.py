"""Benchmark-suite conftest: keeps pytest-benchmark configuration local.

The shared helpers live in ``_bench_utils``; see that module and the
individual ``bench_*.py`` files for what each benchmark reproduces.
"""
