"""Figure 8: running time of DCFastQC vs Quick+ while varying gamma.

The paper's observations reproduced here: (1) DCFastQC outperforms Quick+ at
every gamma, and (2) running times drop as gamma increases (fewer and smaller
quasi-cliques survive).
"""

from __future__ import annotations

import pytest

from repro.datasets import DEFAULT_FIGURE_DATASETS, get_spec
from repro.experiments import format_table, speedup_over_baseline, sweep_parameter

from _bench_utils import attach_rows, run_once


def gamma_values(name: str) -> list[float]:
    gamma = get_spec(name).default_gamma
    return [round(max(0.5, gamma - 0.04), 3), gamma, round(min(0.99, gamma + 0.04), 3)]


@pytest.mark.parametrize("name", DEFAULT_FIGURE_DATASETS)
def test_figure8_vary_gamma(benchmark, name):
    spec = get_spec(name)
    graph = spec.build()
    values = gamma_values(name)

    def run():
        return sweep_parameter(graph, "gamma", values, spec.default_gamma,
                               spec.default_theta, algorithms=("dcfastqc", "quickplus"))

    rows = run_once(benchmark, run)
    for row in rows:
        row["dataset"] = name
    attach_rows(benchmark, rows, keys=["dataset", "algorithm", "swept_value",
                                       "enumeration_seconds", "branches_explored",
                                       "maximal_count"])
    speedup = speedup_over_baseline(rows)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # Correctness: both algorithms agree on the MQC count at every gamma.
    for value in values:
        counts = {row["algorithm"]: row["maximal_count"]
                  for row in rows if row["swept_value"] == value}
        assert counts["dcfastqc"] == counts["quickplus"]
    # Shape: DCFastQC at least matches Quick+ overall (the paper reports wins
    # of one to two orders of magnitude).
    assert speedup >= 0.5
    print()
    print(format_table(rows, columns=["dataset", "algorithm", "swept_value",
                                      "enumeration_seconds", "branches_explored",
                                      "maximal_count"]))
