"""Figure 7: DCFastQC vs Quick+ running time on every dataset analogue (defaults).

The paper reports that DCFastQC outperforms Quick+ on all datasets with up to
100x speedup; the reproduction checks the same direction (DCFastQC never
slower) and records the measured speedups.
"""

from __future__ import annotations

import pytest

from repro.datasets import dataset_names, get_spec
from repro.experiments import compare_algorithms, format_table, speedup_over_baseline

from _bench_utils import attach_rows, run_once


@pytest.mark.parametrize("name", dataset_names())
def test_figure7_dataset(benchmark, name):
    """Run DCFastQC and Quick+ at the dataset's default gamma / theta."""
    spec = get_spec(name)
    graph = spec.build()

    def run():
        return compare_algorithms(graph, spec.default_gamma, spec.default_theta,
                                  algorithms=("dcfastqc", "quickplus"))

    rows = run_once(benchmark, run)
    for row in rows:
        row["dataset"] = name
    attach_rows(benchmark, rows, keys=["dataset", "algorithm", "enumeration_seconds",
                                       "branches_explored", "candidate_count",
                                       "maximal_count"])
    speedup = speedup_over_baseline(rows)
    benchmark.extra_info["speedup_dcfastqc_over_quickplus"] = round(speedup, 2)
    by_algorithm = {row["algorithm"]: row for row in rows}
    # Both algorithms must agree on the number of maximal QCs.
    assert by_algorithm["dcfastqc"]["maximal_count"] == by_algorithm["quickplus"]["maximal_count"]
    # The paper's headline: DCFastQC wins on every dataset.
    assert speedup >= 1.0, f"DCFastQC slower than Quick+ on {name}"
    print()
    print(format_table(rows, columns=["dataset", "algorithm", "enumeration_seconds",
                                      "branches_explored", "candidate_count",
                                      "maximal_count"]))
    print(f"speedup (Quick+ / DCFastQC): {speedup:.1f}x")
