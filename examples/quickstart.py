"""Quickstart: enumerate maximal quasi-cliques of a small graph.

Run with:  python examples/quickstart.py
"""

from repro import Graph, find_maximal_quasi_cliques


def main() -> None:
    # A small collaboration network: two dense groups sharing one member.
    edges = [
        # group A: {alice, bob, carol, dave} (almost a clique)
        ("alice", "bob"), ("alice", "carol"), ("alice", "dave"),
        ("bob", "carol"), ("bob", "dave"),
        # group B: {dave, erin, frank, grace, heidi}
        ("dave", "erin"), ("dave", "frank"), ("dave", "grace"),
        ("erin", "frank"), ("erin", "grace"), ("erin", "heidi"),
        ("frank", "grace"), ("frank", "heidi"), ("grace", "heidi"),
        # a few stray collaborations
        ("carol", "erin"), ("heidi", "ivan"), ("ivan", "judy"),
    ]
    graph = Graph(edges=edges)
    print(f"graph: {graph.vertex_count} vertices, {graph.edge_count} edges")

    # Find every maximal 0.8-quasi-clique with at least 4 members: each member
    # must know at least 80% of the other members of the group.
    result = find_maximal_quasi_cliques(graph, gamma=0.8, theta=4)

    print(f"\nfound {result.maximal_count} maximal 0.8-quasi-cliques with >= 4 members "
          f"in {result.total_seconds:.4f}s "
          f"({result.search_statistics.branches_explored} branches explored):")
    for clique in result.maximal_quasi_cliques:
        print("  ", ", ".join(sorted(clique)))

    # The same call can run the Quick+ baseline for comparison.
    baseline = find_maximal_quasi_cliques(graph, gamma=0.8, theta=4, algorithm="quickplus")
    print(f"\nQuick+ returned {baseline.candidate_count} candidate QCs before filtering; "
          f"DCFastQC returned {result.candidate_count}.")
    assert set(baseline.maximal_quasi_cliques) == set(result.maximal_quasi_cliques)
    print("both algorithms agree on the maximal quasi-cliques.")


if __name__ == "__main__":
    main()
