"""Regenerate a miniature version of the paper's evaluation tables and figures.

This example drives the ``repro.experiments`` harness exactly the way the
benchmark suite does, but on a trimmed set of datasets and parameter values so
it finishes in well under a minute.  The full-scale runs live under
``benchmarks/`` and are recorded in EXPERIMENTS.md.

Run with:  python examples/paper_experiments.py
"""

from repro.experiments import (
    figure7_rows,
    figure11_rows,
    figure12_rows,
    format_table,
    max_round_rows,
    speedup_over_baseline,
    table1_rows,
)


def main() -> None:
    print("== Table 1 (three dataset analogues) ==")
    rows = table1_rows(names=["ca-grqc", "enron", "fullusa"])
    print(format_table(rows, columns=[
        "dataset", "vertices", "edges", "max_degree", "degeneracy",
        "gamma_default", "theta_default", "mqc_count", "dcfastqc_count",
        "quickplus_count", "min_size", "max_size", "avg_size"]))

    print("\n== Figure 7 (running time, defaults) ==")
    rows = figure7_rows(names=["ca-grqc", "enron", "fullusa"])
    print(format_table(rows, columns=[
        "dataset", "algorithm", "enumeration_seconds", "branches_explored",
        "candidate_count", "maximal_count"]))
    print(f"overall DCFastQC speedup over Quick+: "
          f"{speedup_over_baseline(rows):.1f}x")

    print("\n== Figure 11 (branching strategies, enron analogue) ==")
    rows = figure11_rows(names=["enron"], vary="theta")
    print(format_table(rows, columns=[
        "dataset", "branching", "swept_value", "enumeration_seconds",
        "branches_explored"]))

    print("\n== Figure 12 (divide-and-conquer frameworks, enron analogue) ==")
    rows = figure12_rows(names=["enron"], vary="theta")
    print(format_table(rows, columns=[
        "dataset", "variant", "swept_value", "enumeration_seconds",
        "branches_explored"]))

    print("\n== MAX_ROUND ablation ==")
    rows = max_round_rows(names=["enron"], rounds=(1, 2, 3))
    print(format_table(rows, columns=[
        "dataset", "max_rounds", "enumeration_seconds", "branches_explored"]))


if __name__ == "__main__":
    main()
