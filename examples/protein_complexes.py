"""Finding protein-complex-like functional groups in an interaction network.

The paper motivates MQC enumeration with biological applications: in a
protein–protein interaction (PPI) network, a functional group is a set of
proteins in which each member interacts with most of the others — exactly a
gamma-quasi-clique.  Real PPI data is not bundled with this repository, so the
example *simulates* a PPI-like network: a sparse noisy background plus a few
planted complexes of different sizes and densities, then recovers the
complexes with DCFastQC.

Run with:  python examples/protein_complexes.py
"""

import random

from repro import Graph, find_maximal_quasi_cliques
from repro.graph.generators import erdos_renyi_gnm, planted_quasi_clique


COMPLEXES = {
    "proteasome-like": list(range(0, 12)),
    "ribosome-like": list(range(15, 24)),
    "polymerase-like": list(range(27, 34)),
}


def simulate_ppi_network(seed: int = 7) -> Graph:
    """A 220-protein interaction network with three planted complexes."""
    rng = random.Random(seed)
    graph = erdos_renyi_gnm(220, 520, seed=rng.randrange(2 ** 31))
    for members in COMPLEXES.values():
        planted_quasi_clique(graph, members, gamma=0.9, seed=rng.randrange(2 ** 31))
    # Spurious interactions touching complex members (experimental noise).
    for _ in range(60):
        a = rng.randrange(220)
        b = rng.randrange(220)
        if a != b:
            graph.add_edge(a, b)
    return graph


def main() -> None:
    graph = simulate_ppi_network()
    print(f"simulated PPI network: {graph.vertex_count} proteins, "
          f"{graph.edge_count} interactions")

    # Mine maximal 0.85-quasi-cliques with at least 7 proteins.
    result = find_maximal_quasi_cliques(graph, gamma=0.85, theta=7)
    print(f"\nfound {result.maximal_count} candidate functional groups "
          f"(gamma=0.85, theta=7) in {result.total_seconds:.3f}s")

    for name, members in COMPLEXES.items():
        planted = set(members)
        best = max(result.maximal_quasi_cliques,
                   key=lambda found: len(planted & found) / len(planted | found),
                   default=frozenset())
        jaccard = len(planted & best) / len(planted | best) if best else 0.0
        print(f"  {name:18s} planted size {len(planted):2d}  "
              f"best recovered group size {len(best):2d}  jaccard {jaccard:.2f}")

    sizes = result.size_statistics()
    print(f"\ngroup sizes: min {sizes.min_size}, max {sizes.max_size}, "
          f"avg {sizes.avg_size:.1f}")


if __name__ == "__main__":
    main()
