"""Query-driven community search and top-k largest quasi-clique mining.

This example exercises the library's extensions (``repro.extensions``), which
implement the problem variants the paper discusses in its related work:

* *query-driven search* — find the maximal quasi-cliques containing a given
  user (the "communities of Alice"), and
* *top-k largest quasi-clique mining* — exact, and via the faster
  kernel-expansion heuristic,
* *parallel enumeration* — the same DCFastQC decomposition fanned out over
  worker processes.

Run with:  python examples/community_search.py
"""

import time

from repro import (
    ParallelDCFastQC,
    community_of,
    find_largest_quasi_cliques,
    find_quasi_cliques_containing,
    kernel_expansion_top_k,
)
from repro.datasets import get_spec


def main() -> None:
    spec = get_spec("wordnet")
    graph = spec.build()
    gamma, theta = spec.default_gamma, spec.default_theta
    print(f"dataset analogue: {spec.name} ({graph.vertex_count} vertices, "
          f"{graph.edge_count} edges), gamma={gamma}, theta={theta}")

    # ------------------------------------------------------------------
    # 1. Query-driven search: communities containing vertex 0 (a member of
    #    the first planted group) and vertex 200 (a background vertex).
    # ------------------------------------------------------------------
    for query_vertex in (0, 200):
        communities = find_quasi_cliques_containing(graph, [query_vertex], gamma,
                                                    theta=max(3, theta - 3))
        print(f"\ncommunities containing vertex {query_vertex}: {len(communities)}")
        for clique in communities[:3]:
            print(f"   size {len(clique):2d}: {sorted(clique)[:10]}"
                  f"{' ...' if len(clique) > 10 else ''}")
    biggest = community_of(graph, 0, gamma, theta=max(3, theta - 3))
    print(f"largest community of vertex 0 has {len(biggest)} members")

    # ------------------------------------------------------------------
    # 2. Top-k largest quasi-cliques: exact vs kernel expansion.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    exact = find_largest_quasi_cliques(graph, gamma, k=3, minimum_size=theta - 3)
    exact_seconds = time.perf_counter() - start
    start = time.perf_counter()
    heuristic = kernel_expansion_top_k(graph, gamma, k=3, kernel_theta=max(3, theta - 3))
    heuristic_seconds = time.perf_counter() - start
    print(f"\ntop-3 largest {gamma}-quasi-cliques:")
    print(f"   exact            sizes {[len(h) for h in exact]}  ({exact_seconds:.3f}s)")
    print(f"   kernel expansion sizes {[len(h) for h in heuristic]}  ({heuristic_seconds:.3f}s)")

    # ------------------------------------------------------------------
    # 3. Parallel enumeration over the DC subproblems.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    parallel = ParallelDCFastQC(graph, gamma, theta, workers=2, chunk_size=16)
    maximal = parallel.find_maximal()
    parallel_seconds = time.perf_counter() - start
    print(f"\nparallel DCFastQC (2 workers): {len(maximal)} maximal quasi-cliques "
          f"in {parallel_seconds:.3f}s")


if __name__ == "__main__":
    main()
