"""Community detection in a social-network-like graph, comparing the algorithms.

The second application the paper motivates is finding social communities: a
community is a group of users in which everyone follows / is friends with most
of the others.  This example builds a scale-free (Barabasi–Albert) social
network with planted communities, mines maximal quasi-cliques with DCFastQC,
FastQC and Quick+, verifies they agree, and reports the running time and the
number of explored branches of each algorithm — a miniature version of the
paper's Figure 7.

Run with:  python examples/community_detection.py
"""

import random
import time

from repro import find_maximal_quasi_cliques
from repro.graph.generators import barabasi_albert, planted_quasi_clique
from repro.graph.statistics import graph_statistics


def simulate_social_network(seed: int = 11):
    """A 400-user scale-free network with four planted communities."""
    rng = random.Random(seed)
    graph = barabasi_albert(400, 3, seed=rng.randrange(2 ** 31))
    communities = [list(range(start, start + size))
                   for start, size in [(0, 11), (40, 10), (90, 9), (150, 8)]]
    for members in communities:
        planted_quasi_clique(graph, members, gamma=0.9, seed=rng.randrange(2 ** 31))
    return graph, communities


def main() -> None:
    graph, communities = simulate_social_network()
    stats = graph_statistics(graph)
    print(f"social network: {stats.vertex_count} users, {stats.edge_count} ties, "
          f"max degree {stats.max_degree}, degeneracy {stats.degeneracy}")

    gamma, theta = 0.85, 7
    print(f"\nmining maximal {gamma}-quasi-cliques with >= {theta} members\n")
    print(f"{'algorithm':10s} {'time (s)':>9s} {'branches':>9s} "
          f"{'candidates':>11s} {'communities':>12s}")

    reference = None
    for algorithm in ("dcfastqc", "fastqc", "quickplus"):
        start = time.perf_counter()
        result = find_maximal_quasi_cliques(graph, gamma, theta, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        print(f"{algorithm:10s} {elapsed:9.3f} "
              f"{result.search_statistics.branches_explored:9d} "
              f"{result.candidate_count:11d} {result.maximal_count:12d}")
        found = set(result.maximal_quasi_cliques)
        if reference is None:
            reference = found
        else:
            assert found == reference, "algorithms disagree!"

    print("\nrecovered communities:")
    for clique in sorted(reference, key=len, reverse=True):
        planted_match = any(len(set(c) & clique) >= 0.7 * len(c) for c in communities)
        marker = "planted" if planted_match else "emergent"
        print(f"  size {len(clique):2d} ({marker}): {sorted(clique)[:12]}"
              f"{' ...' if len(clique) > 12 else ''}")


if __name__ == "__main__":
    main()
